//! Channel-assignment strategies (the paper's strategy vectors `s_x`).

use crate::ids::{ChannelId, NodeId};
use serde::{Deserialize, Serialize};

/// A (possibly partial) channel assignment: each node either selects one
/// channel or stays silent.
///
/// The paper's strategy vector `s_x = {s_{x,i}}` allows "the actual length
/// of a feasible strategy" to "be smaller than N if some nodes do not
/// choose any channel" (Section III) — hence the `Option`.
///
/// # Example
///
/// ```
/// use mhca_graph::{Strategy, NodeId, ChannelId};
///
/// let mut s = Strategy::new(3);
/// s.assign(NodeId(0), ChannelId(2));
/// s.assign(NodeId(2), ChannelId(0));
/// assert_eq!(s.channel_of(NodeId(0)), Some(ChannelId(2)));
/// assert_eq!(s.channel_of(NodeId(1)), None);
/// assert_eq!(s.assigned_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Strategy {
    choices: Vec<Option<ChannelId>>,
}

impl Strategy {
    /// Creates an empty strategy (all `n` nodes silent).
    pub fn new(n: usize) -> Self {
        Strategy {
            choices: vec![None; n],
        }
    }

    /// Number of nodes the strategy covers (`N`, not the assigned count).
    pub fn n_nodes(&self) -> usize {
        self.choices.len()
    }

    /// Assigns `channel` to `node`, replacing any previous choice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn assign(&mut self, node: NodeId, channel: ChannelId) {
        self.choices[node.0] = Some(channel);
    }

    /// Makes `node` silent (no channel).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn clear(&mut self, node: NodeId) {
        self.choices[node.0] = None;
    }

    /// The channel selected by `node`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn channel_of(&self, node: NodeId) -> Option<ChannelId> {
        self.choices[node.0]
    }

    /// Number of nodes that selected a channel.
    pub fn assigned_count(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }

    /// `true` if no node selected a channel.
    pub fn is_silent(&self) -> bool {
        self.assigned_count() == 0
    }

    /// Iterator over `(node, channel)` pairs of assigned nodes, in node order.
    pub fn assignments(&self) -> impl Iterator<Item = (NodeId, ChannelId)> + '_ {
        self.choices
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|ch| (NodeId(i), ch)))
    }

    /// Sum of `weight(node, channel)` over assigned pairs — the strategy
    /// throughput `λ_x = Σ µ_{i, s_{x,i}}` when `weight` returns means.
    pub fn total_weight<F: Fn(NodeId, ChannelId) -> f64>(&self, weight: F) -> f64 {
        self.assignments().map(|(n, c)| weight(n, c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_strategy_is_silent() {
        let s = Strategy::new(4);
        assert!(s.is_silent());
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.assigned_count(), 0);
    }

    #[test]
    fn assign_clear_roundtrip() {
        let mut s = Strategy::new(2);
        s.assign(NodeId(1), ChannelId(3));
        assert_eq!(s.channel_of(NodeId(1)), Some(ChannelId(3)));
        s.clear(NodeId(1));
        assert_eq!(s.channel_of(NodeId(1)), None);
    }

    #[test]
    fn reassignment_replaces() {
        let mut s = Strategy::new(1);
        s.assign(NodeId(0), ChannelId(0));
        s.assign(NodeId(0), ChannelId(5));
        assert_eq!(s.channel_of(NodeId(0)), Some(ChannelId(5)));
        assert_eq!(s.assigned_count(), 1);
    }

    #[test]
    fn assignments_iterate_in_node_order() {
        let mut s = Strategy::new(5);
        s.assign(NodeId(4), ChannelId(1));
        s.assign(NodeId(0), ChannelId(2));
        let v: Vec<_> = s.assignments().collect();
        assert_eq!(
            v,
            vec![(NodeId(0), ChannelId(2)), (NodeId(4), ChannelId(1))]
        );
    }

    #[test]
    fn total_weight_sums_assigned_pairs() {
        let mut s = Strategy::new(3);
        s.assign(NodeId(0), ChannelId(1));
        s.assign(NodeId(2), ChannelId(0));
        let w = s.total_weight(|n, c| (n.0 * 10 + c.0) as f64);
        assert_eq!(w, 1.0 + 20.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        let mut s = Strategy::new(1);
        s.assign(NodeId(1), ChannelId(0));
    }
}
