//! Deterministic conflict-graph topologies.
//!
//! These serve as regression workloads: [`line()`](fn@line) is the Fig. 5 worst case
//! where, with strictly decreasing weights along the line, the distributed
//! strategy decision needs `Θ(N)` mini-rounds; the others cover standard
//! shapes used in tests and ablation benches.

use crate::graph::{Graph, GraphBuilder};

/// Path (linear network) on `n` vertices: `0 — 1 — … — n−1`.
///
/// This is the worst-case topology of Fig. 5 in the paper.
pub fn line(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n` vertices (`n ≥ 3` gives a proper ring; smaller `n`
/// degenerates to a line).
pub fn ring(n: usize) -> Graph {
    let mut edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    if n >= 3 {
        edges.push((n - 1, 0));
    }
    Graph::from_edges(n, &edges)
}

/// `rows × cols` grid graph with 4-neighbor connectivity.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols);
            }
        }
    }
    g.build()
}

/// Star on `n` vertices: vertex `0` is the hub.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n` — models a single-hop network where every pair of
/// users conflicts (the setting of prior single-hop MAB work the paper
/// generalizes).
pub fn complete(n: usize) -> Graph {
    let mut g = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g.build()
}

/// Edgeless graph — no conflicts at all; every node can always transmit.
pub fn independent(n: usize) -> Graph {
    Graph::new(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_has_n_minus_one_edges() {
        assert_eq!(line(5).edge_count(), 4);
        assert_eq!(line(1).edge_count(), 0);
        assert_eq!(line(0).n(), 0);
    }

    #[test]
    fn line_diameter_is_n_minus_one() {
        let g = line(6);
        assert_eq!(g.hop_distance(0, 5), Some(5));
    }

    #[test]
    fn ring_closes_the_loop() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.hop_distance(0, 4), Some(1));
        // n = 2 degenerates to a single edge, not a multi-edge.
        assert_eq!(ring(2).edge_count(), 1);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn star_hub_degree() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        // The only independent sets are singletons.
        assert!(!g.is_independent(&[0, 1]));
    }

    #[test]
    fn independent_graph_has_no_conflicts() {
        let g = independent(4);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_independent(&[0, 1, 2, 3]));
    }
}
