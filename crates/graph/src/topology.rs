//! Deterministic conflict-graph topologies.
//!
//! These serve as regression workloads: [`line()`](fn@line) is the Fig. 5 worst case
//! where, with strictly decreasing weights along the line, the distributed
//! strategy decision needs `Θ(N)` mini-rounds; the others cover standard
//! shapes used in tests and ablation benches.

use crate::graph::{Graph, GraphBuilder};
use crate::unit_disk::{self, Layout};
use serde::{Deserialize, Serialize};

/// Path (linear network) on `n` vertices: `0 — 1 — … — n−1`.
///
/// This is the worst-case topology of Fig. 5 in the paper.
pub fn line(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n` vertices (`n ≥ 3` gives a proper ring; smaller `n`
/// degenerates to a line).
pub fn ring(n: usize) -> Graph {
    let mut edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    if n >= 3 {
        edges.push((n - 1, 0));
    }
    Graph::from_edges(n, &edges)
}

/// `rows × cols` grid graph with 4-neighbor connectivity.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols);
            }
        }
    }
    g.build()
}

/// Star on `n` vertices: vertex `0` is the hub.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n` — models a single-hop network where every pair of
/// users conflicts (the setting of prior single-hop MAB work the paper
/// generalizes).
pub fn complete(n: usize) -> Graph {
    let mut g = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g.build()
}

/// Edgeless graph — no conflicts at all; every node can always transmit.
pub fn independent(n: usize) -> Graph {
    Graph::new(n)
}

/// Near-square grid on **exactly** `n` vertices: `rows = ⌊√n⌋` full rows of
/// `⌈n/rows⌉` columns with the last row possibly partial. Unlike
/// [`grid`], the vertex count is an input, which is what spec-driven
/// experiment construction needs (the channel matrix is `n × m`).
pub fn grid_n(n: usize) -> Graph {
    if n == 0 {
        return Graph::new(0);
    }
    let rows = (1..).take_while(|r| r * r <= n).last().unwrap_or(1);
    let cols = n.div_ceil(rows);
    let mut g = GraphBuilder::new(n);
    for v in 0..n {
        if (v % cols) + 1 < cols && v + 1 < n {
            g.add_edge(v, v + 1);
        }
        if v + cols < n {
            g.add_edge(v, v + cols);
        }
    }
    g.build()
}

/// Declarative topology family — the enum-dispatched counterpart of the
/// constructors in this module and [`unit_disk`], used by spec-driven
/// experiment campaigns: a `(family, n, seed)` triple fully determines the
/// conflict graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Random unit-disk graph targeting an average conflict degree
    /// (Section IV-D's "random networks with an average degree `d`").
    UnitDisk {
        /// Target average degree `d`.
        avg_degree: f64,
    },
    /// As [`TopologySpec::UnitDisk`] but resampled until connected (the
    /// Fig. 7 workload).
    UnitDiskConnected {
        /// Target average degree `d`.
        avg_degree: f64,
    },
    /// Linear network `0 — 1 — … — n−1` (the Fig. 5 worst case).
    Line,
    /// Cycle on `n` vertices.
    Ring,
    /// Near-square grid on exactly `n` vertices ([`grid_n`]).
    Grid,
    /// Star with vertex 0 as the hub.
    Star,
    /// Complete graph — the single-hop setting of prior MAB work.
    Complete,
    /// Edgeless graph — no conflicts at all.
    Independent,
}

impl TopologySpec {
    /// Builds the conflict graph (plus the geometric layout for unit-disk
    /// families). Deterministic in `(self, n, seed)`; the unit-disk seed
    /// stream is identical to the historical `Network::random` path, so
    /// existing pinned results are unchanged.
    ///
    /// # Panics
    ///
    /// Propagates the constructor panics (e.g. unit-disk families need
    /// `2 ≤ n` and `0 < avg_degree < n`; the connected family panics if no
    /// connected instance is found in 1000 tries).
    pub fn build(&self, n: usize, seed: u64) -> (Graph, Option<Layout>) {
        use rand::{rngs::StdRng, SeedableRng};
        match *self {
            TopologySpec::UnitDisk { avg_degree } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let (g, layout) = unit_disk::random_with_average_degree(n, avg_degree, &mut rng);
                (g, Some(layout))
            }
            TopologySpec::UnitDiskConnected { avg_degree } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let (g, layout) =
                    unit_disk::random_connected_with_average_degree(n, avg_degree, 1000, &mut rng)
                        .expect("no connected instance found in 1000 tries");
                (g, Some(layout))
            }
            TopologySpec::Line => (line(n), None),
            TopologySpec::Ring => (ring(n), None),
            TopologySpec::Grid => (grid_n(n), None),
            TopologySpec::Star => (star(n), None),
            TopologySpec::Complete => (complete(n), None),
            TopologySpec::Independent => (independent(n), None),
        }
    }

    /// Short kebab-case family name for artifact paths and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            TopologySpec::UnitDisk { .. } => "unit-disk",
            TopologySpec::UnitDiskConnected { .. } => "unit-disk-connected",
            TopologySpec::Line => "line",
            TopologySpec::Ring => "ring",
            TopologySpec::Grid => "grid",
            TopologySpec::Star => "star",
            TopologySpec::Complete => "complete",
            TopologySpec::Independent => "independent",
        }
    }

    /// `true` for families whose construction consumes randomness (two
    /// seeds give two different graphs).
    pub fn is_random(&self) -> bool {
        matches!(
            self,
            TopologySpec::UnitDisk { .. } | TopologySpec::UnitDiskConnected { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_has_n_minus_one_edges() {
        assert_eq!(line(5).edge_count(), 4);
        assert_eq!(line(1).edge_count(), 0);
        assert_eq!(line(0).n(), 0);
    }

    #[test]
    fn line_diameter_is_n_minus_one() {
        let g = line(6);
        assert_eq!(g.hop_distance(0, 5), Some(5));
    }

    #[test]
    fn ring_closes_the_loop() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.hop_distance(0, 4), Some(1));
        // n = 2 degenerates to a single edge, not a multi-edge.
        assert_eq!(ring(2).edge_count(), 1);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn star_hub_degree() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        // The only independent sets are singletons.
        assert!(!g.is_independent(&[0, 1]));
    }

    #[test]
    fn independent_graph_has_no_conflicts() {
        let g = independent(4);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_independent(&[0, 1, 2, 3]));
    }

    #[test]
    fn grid_n_has_exact_vertex_count() {
        for n in [0usize, 1, 2, 5, 9, 12, 16, 17, 30] {
            let g = grid_n(n);
            assert_eq!(g.n(), n, "n={n}");
            if n > 1 {
                assert!(g.is_connected(), "grid_n({n}) must be connected");
            }
        }
        // A perfect square reproduces the rectangular grid.
        assert_eq!(grid_n(12).edge_count(), grid(3, 4).edge_count());
    }

    #[test]
    fn spec_build_matches_direct_constructors() {
        let (g, layout) = TopologySpec::Line.build(6, 0);
        assert_eq!(g, line(6));
        assert!(layout.is_none());
        let (g, _) = TopologySpec::Complete.build(5, 9);
        assert_eq!(g, complete(5));
        // Seed-determinism of the random family.
        let spec = TopologySpec::UnitDisk { avg_degree: 3.0 };
        let (a, la) = spec.build(20, 7);
        let (b, lb) = spec.build(20, 7);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(la.is_some());
        assert!(spec.is_random() && !TopologySpec::Ring.is_random());
    }

    #[test]
    fn spec_connected_family_is_connected() {
        let spec = TopologySpec::UnitDiskConnected { avg_degree: 4.0 };
        let (g, _) = spec.build(15, 3);
        assert!(g.is_connected());
    }
}
