//! Random geometric (unit-disk) conflict graphs.
//!
//! The paper models conflicts with unit disks: each node is a disk centered
//! on itself and two nodes conflict when their disks intersect, i.e. when
//! their Euclidean distance is at most twice the disk radius (Section II and
//! Section IV-B use `‖u,v‖ ≤ 2` for unit radius). Section IV-D analyses
//! *random networks* where node locations are uniformly distributed and the
//! network has an average degree `d`; [`random_with_average_degree`] builds
//! exactly that workload.

use crate::{geometry::Point, graph::Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Geometric layout backing a unit-disk graph: node positions plus the
/// conflict radius (edge iff `distance ≤ radius`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Layout {
    /// Node positions, indexed by node id.
    pub points: Vec<Point>,
    /// Conflict radius: `{u,v}` is an edge iff `‖u−v‖ ≤ radius`.
    pub radius: f64,
    /// Side length of the square deployment area.
    pub side: f64,
}

impl Layout {
    /// Builds the unit-disk graph induced by this layout.
    pub fn to_graph(&self) -> Graph {
        let n = self.points.len();
        let r2 = self.radius * self.radius;
        let mut g = crate::GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if self.points[u].distance_squared(&self.points[v]) <= r2 {
                    g.add_edge(u, v);
                }
            }
        }
        g.build()
    }
}

/// Samples `n` points uniformly in a `side × side` square and connects
/// pairs within `radius`.
///
/// Returns the conflict graph and its layout.
///
/// # Panics
///
/// Panics if `n == 0`, `side <= 0`, or `radius <= 0`.
pub fn random_unit_disk<R: Rng>(n: usize, side: f64, radius: f64, rng: &mut R) -> (Graph, Layout) {
    assert!(n > 0, "need at least one node");
    assert!(side > 0.0, "side must be positive");
    assert!(radius > 0.0, "radius must be positive");
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect();
    let layout = Layout {
        points,
        radius,
        side,
    };
    (layout.to_graph(), layout)
}

/// Samples a random unit-disk network targeting an average degree `d`.
///
/// For `n` points uniform in a square of side `L` with conflict radius `ρ`,
/// the expected degree (ignoring boundary effects) is `(n−1)·π·ρ²/L²`;
/// we solve for `L` and sample. The realized average degree fluctuates
/// around the target, which matches the paper's "random networks with an
/// average degree `d`" setting.
///
/// # Panics
///
/// Panics if `n < 2` or `target_degree <= 0` or `target_degree >= n as f64`.
pub fn random_with_average_degree<R: Rng>(
    n: usize,
    target_degree: f64,
    rng: &mut R,
) -> (Graph, Layout) {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        target_degree > 0.0 && target_degree < n as f64,
        "target degree must be in (0, n)"
    );
    let radius = 1.0;
    let side = ((n as f64 - 1.0) * std::f64::consts::PI * radius * radius / target_degree).sqrt();
    random_unit_disk(n, side, radius, rng)
}

/// Repeatedly samples random unit-disk networks with target average degree
/// until a *connected* one is found (the Fig. 7 experiment uses "a randomly
/// generated connected network").
///
/// Returns `None` if `max_tries` samples were all disconnected.
pub fn random_connected_with_average_degree<R: Rng>(
    n: usize,
    target_degree: f64,
    max_tries: usize,
    rng: &mut R,
) -> Option<(Graph, Layout)> {
    for _ in 0..max_tries {
        let (g, layout) = random_with_average_degree(n, target_degree, rng);
        if g.is_connected() {
            return Some((g, layout));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn graph_edges_respect_radius() {
        let layout = Layout {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(3.0, 0.0),
            ],
            radius: 1.5,
            side: 4.0,
        };
        let g = layout.to_graph();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2)); // distance 2 > 1.5
    }

    #[test]
    fn random_unit_disk_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let (g1, l1) = random_unit_disk(30, 5.0, 1.0, &mut rng1);
        let (g2, l2) = random_unit_disk(30, 5.0, 1.0, &mut rng2);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn average_degree_close_to_target() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut total = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let (g, _) = random_with_average_degree(200, 6.0, &mut rng);
            total += g.average_degree();
        }
        let mean = total / reps as f64;
        // Boundary effects bias the realized degree slightly below target.
        assert!(
            (mean - 6.0).abs() < 1.5,
            "mean realized degree {mean} too far from target 6"
        );
    }

    #[test]
    fn connected_generator_returns_connected_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_connected_with_average_degree(15, 4.0, 200, &mut rng)
            .expect("should find a connected instance");
        assert!(g.is_connected());
        assert_eq!(g.n(), 15);
    }

    #[test]
    #[should_panic(expected = "target degree")]
    fn rejects_absurd_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_with_average_degree(10, 20.0, &mut rng);
    }
}
