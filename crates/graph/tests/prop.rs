//! Property-based tests for the graph substrate.

use mhca_graph::{BallTable, ExtendedConflictGraph, Graph, NodeId, Strategy as ChannelStrategy};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    arb_edge_list(max_n).prop_map(|(n, edges)| {
        let mut g = Graph::builder(n);
        for &(u, v) in &edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        g.build()
    })
}

/// Raw `(n, edge list)` pairs, so the same input can drive both the CSR
/// graph and the naive reference model.
fn arb_edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |edges| (n, edges))
    })
}

/// Reference model: a dense adjacency matrix with O(1) edge updates —
/// trivially correct, structurally unlike CSR.
struct MatrixGraph {
    n: usize,
    adj: Vec<Vec<bool>>,
}

impl MatrixGraph {
    fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![vec![false; n]; n];
        for &(u, v) in edges {
            if u != v {
                adj[u][v] = true;
                adj[v][u] = true;
            }
        }
        MatrixGraph { n, adj }
    }

    fn edge_count(&self) -> usize {
        (0..self.n)
            .map(|u| (u + 1..self.n).filter(|&v| self.adj[u][v]).count())
            .sum()
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        (0..self.n).filter(|&u| self.adj[v][u]).collect()
    }

    /// Plain BFS distances straight off the matrix.
    fn bfs(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n];
        dist[src] = Some(0);
        let mut frontier = vec![src];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                let du = dist[u].unwrap();
                for (w, &edge) in self.adj[u].iter().enumerate() {
                    if edge && dist[w].is_none() {
                        dist[w] = Some(du + 1);
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            let mut comp: Vec<usize> = self
                .bfs(s)
                .iter()
                .enumerate()
                .filter_map(|(v, d)| d.map(|_| v))
                .filter(|&v| !seen[v])
                .collect();
            for &v in &comp {
                seen[v] = true;
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_agrees_with_adjacency_matrix_model((n, edges) in arb_edge_list(16)) {
        let mut b = Graph::builder(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let m = MatrixGraph::new(n, &edges);
        prop_assert_eq!(g.n(), m.n);
        prop_assert_eq!(g.edge_count(), m.edge_count());
        for v in 0..n {
            prop_assert_eq!(g.neighbors(v), m.neighbors(v).as_slice(), "neighbors of {}", v);
            prop_assert_eq!(g.degree(v), m.neighbors(v).len());
        }
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(g.has_edge(u, v), m.adj[u][v], "edge {}-{}", u, v);
            }
        }
    }

    #[test]
    fn csr_distances_match_matrix_bfs((n, edges) in arb_edge_list(14)) {
        let g = Graph::from_edges(n, &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>());
        let m = MatrixGraph::new(n, &edges);
        for src in 0..n {
            let expect = m.bfs(src);
            prop_assert_eq!(g.bfs_distances(src), expect.clone());
            for (v, d) in expect.iter().enumerate() {
                prop_assert_eq!(g.hop_distance(src, v), *d);
            }
            // r-hop neighborhoods follow from the distances.
            for r in 0..4 {
                let ball = g.r_hop_neighborhood(src, r);
                let expect_ball: Vec<usize> = (0..n)
                    .filter(|&v| expect[v].is_some_and(|d| d <= r))
                    .collect();
                prop_assert_eq!(ball, expect_ball, "src={} r={}", src, r);
            }
        }
    }

    #[test]
    fn csr_components_match_matrix_model((n, edges) in arb_edge_list(16)) {
        let g = Graph::from_edges(n, &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>());
        let m = MatrixGraph::new(n, &edges);
        prop_assert_eq!(g.connected_components(), m.components());
    }

    #[test]
    fn ball_table_matches_fresh_bfs(g in arb_graph(16), r in 0usize..5) {
        let table = BallTable::build(&g, r);
        for v in 0..g.n() {
            let dist = g.bfs_distances(v);
            let mut expect: Vec<(u32, u32)> = dist
                .iter()
                .enumerate()
                .filter_map(|(u, d)| {
                    d.filter(|&d| d >= 1 && d <= r).map(|d| (u as u32, d as u32))
                })
                .collect();
            expect.sort_unstable();
            let mut got = table.ball(v).to_vec();
            // Entries arrive in BFS (distance) order; check that first.
            prop_assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "v={}", v);
            got.sort_unstable();
            prop_assert_eq!(got, expect, "v={} r={}", v, r);
        }
    }

    #[test]
    fn r_hop_neighborhood_matches_bfs_distances(g in arb_graph(20), r in 0usize..5) {
        for v in 0..g.n() {
            let ball = g.r_hop_neighborhood(v, r);
            let dist = g.bfs_distances(v);
            for (u, du) in dist.iter().enumerate() {
                let in_ball = ball.binary_search(&u).is_ok();
                let close = du.is_some_and(|d| d <= r);
                prop_assert_eq!(in_ball, close, "v={} u={} r={}", v, u, r);
            }
        }
    }

    #[test]
    fn hop_distance_is_symmetric_and_triangular(g in arb_graph(12)) {
        let n = g.n();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(g.hop_distance(u, v), g.hop_distance(v, u));
            }
        }
        // Triangle inequality where defined.
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    if let (Some(a), Some(b), Some(c)) =
                        (g.hop_distance(u, v), g.hop_distance(v, w), g.hop_distance(u, w))
                    {
                        prop_assert!(c <= a + b);
                    }
                }
            }
        }
    }

    #[test]
    fn components_partition_the_vertex_set(g in arb_graph(20)) {
        let comps = g.connected_components();
        let mut seen = vec![false; g.n()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "vertex {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // No edges between components.
        for (i, a) in comps.iter().enumerate() {
            for b in comps.iter().skip(i + 1) {
                for &u in a {
                    for &v in b {
                        prop_assert!(!g.has_edge(u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(15)) {
        // Take every other vertex.
        let verts: Vec<usize> = (0..g.n()).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&verts);
        for i in 0..sub.n() {
            for j in 0..sub.n() {
                prop_assert_eq!(sub.has_edge(i, j), g.has_edge(map[i], map[j]));
            }
        }
    }

    #[test]
    fn h_has_exactly_the_right_edges(g in arb_graph(8), m in 1usize..4) {
        let h = ExtendedConflictGraph::new(&g, m);
        let hg = h.graph();
        prop_assert_eq!(h.n_vertices(), g.n() * m);
        // Edge count: one clique per node + M edges per G-edge.
        let expect = g.n() * m * (m - 1) / 2 + g.edge_count() * m;
        prop_assert_eq!(hg.edge_count(), expect);
        // Structure check vertex by vertex.
        for a in 0..h.n_vertices() {
            for b in (a + 1)..h.n_vertices() {
                let (na, ca) = (a / m, a % m);
                let (nb, cb) = (b / m, b % m);
                let should = (na == nb) || (ca == cb && g.has_edge(na, nb));
                prop_assert_eq!(hg.has_edge(a, b), should, "a={} b={}", a, b);
            }
        }
    }

    #[test]
    fn independent_sets_of_h_are_feasible_strategies(g in arb_graph(8), m in 1usize..4, mask in any::<u64>()) {
        let h = ExtendedConflictGraph::new(&g, m);
        // Build a random vertex subset; keep it independent greedily.
        let mut set = Vec::new();
        for v in 0..h.n_vertices() {
            if mask >> (v % 64) & 1 == 1
                && set.iter().all(|&u| !h.graph().has_edge(u, v))
            {
                set.push(v);
            }
        }
        let s = h.strategy_from_is(&set);
        prop_assert!(h.is_feasible(&s));
        prop_assert_eq!(s.assigned_count(), set.len());
        prop_assert_eq!(h.is_from_strategy(&s), set);
    }

    #[test]
    fn strategy_weight_matches_manual_sum(g in arb_graph(6), m in 1usize..3) {
        let h = ExtendedConflictGraph::new(&g, m);
        let w: Vec<f64> = (0..h.n_vertices()).map(|v| v as f64 + 0.5).collect();
        // Assign node 0 its channel 0 (always feasible alone).
        let mut s = ChannelStrategy::new(g.n());
        s.assign(NodeId(0), mhca_graph::ChannelId(0));
        prop_assert_eq!(h.strategy_weight(&s, &w), 0.5);
    }
}
