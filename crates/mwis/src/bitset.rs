//! Minimal fixed-capacity bitset used by the branch-and-bound solver.

/// A fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    pub(crate) fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Re-initializes to an all-zero set of the given capacity, reusing
    /// the word storage when it suffices (no allocation on shrink or
    /// same-size reuse).
    pub(crate) fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Copies `other`'s contents into `self`, reusing the word storage
    /// (unlike the derived `clone_from`, which always reallocates).
    pub(crate) fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// Sets every bit in `0..capacity`.
    pub(crate) fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Kept for protocol-side users and tests; the hot solver path does not
    /// need it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every bit present in `other` (`self &= !other`).
    pub(crate) fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Iterator over set bits, ascending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = BitSet::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        b.remove(64);
        assert!(!b.contains(64));
    }

    #[test]
    fn iter_is_sorted() {
        let mut b = BitSet::new(200);
        for i in [5usize, 150, 63, 64, 199] {
            b.insert(i);
        }
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 150, 199]);
    }

    #[test]
    fn subtract_clears_common_bits() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        a.subtract(&b);
        assert!(a.contains(1));
        assert!(!a.contains(70));
    }

    #[test]
    fn reset_and_fill_reuse_storage() {
        let mut b = BitSet::new(130);
        b.insert(5);
        b.reset(70);
        assert!(b.is_empty());
        b.fill();
        assert_eq!(b.iter().count(), 70);
        assert!(b.contains(69));
        b.reset(130);
        assert!(b.is_empty());
        assert!(!b.contains(69));
    }

    #[test]
    fn empty_detection() {
        let mut b = BitSet::new(10);
        assert!(b.is_empty());
        b.insert(3);
        assert!(!b.is_empty());
        b.remove(3);
        assert!(b.is_empty());
    }
}
