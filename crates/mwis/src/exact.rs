//! Exact MWIS by branch-and-bound over vertex groups.
//!
//! The solver branches over *groups* of vertices, where each group is
//! promised by the caller to be a clique (so at most one member can be
//! selected). This matches the structure of the extended conflict graph
//! `H`: grouping virtual vertices by master node turns the search into
//! "pick at most one channel per node", which is what the LocalLeader
//! enumeration of Algorithm 3 computes and what the paper's brute-force
//! optimum (Fig. 7, the 15-user × 3-channel instance) needs.
//!
//! For a generic graph, [`solve`] puts every vertex in its own group.
//!
//! Complexity is exponential in the worst case (MWIS is NP-hard); the
//! bound `current + Σ_remaining-groups max-available-weight` prunes
//! aggressively on the geometric instances the paper simulates.

use crate::{bitset::BitSet, set::WeightedSet};
use mhca_graph::Graph;

/// Exact MWIS over the whole graph, each vertex its own group.
///
/// Only vertices with strictly positive weight are ever selected (adding a
/// zero-weight vertex never increases the objective).
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`.
pub fn solve(graph: &Graph, weights: &[f64]) -> WeightedSet {
    let allowed: Vec<usize> = (0..graph.n()).collect();
    solve_subset(graph, weights, &allowed)
}

/// Exact MWIS restricted to the `allowed` vertex set, each vertex its own
/// group.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()` or `allowed` has out-of-range or
/// duplicate entries.
pub fn solve_subset(graph: &Graph, weights: &[f64], allowed: &[usize]) -> WeightedSet {
    let identity: Vec<usize> = (0..graph.n()).collect();
    solve_grouped(graph, weights, allowed, &identity)
}

/// Exact MWIS restricted to `allowed`, with clique groups.
///
/// `group_of[v]` labels each vertex with a group id; all allowed vertices
/// sharing a label **must form a clique** (the solver selects at most one
/// per group and does not re-check pairwise adjacency within a group).
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`, `group_of.len() != graph.n()`,
/// or `allowed` has out-of-range/duplicate entries. In debug builds, also
/// panics if a group is not a clique.
pub fn solve_grouped(
    graph: &Graph,
    weights: &[f64],
    allowed: &[usize],
    group_of: &[usize],
) -> WeightedSet {
    assert_eq!(weights.len(), graph.n(), "weight vector length");
    assert_eq!(group_of.len(), graph.n(), "group vector length");
    // Local indexing of allowed vertices with positive weight.
    let mut seen = vec![false; graph.n()];
    let mut local_to_global = Vec::new();
    for &v in allowed {
        assert!(v < graph.n(), "vertex out of range");
        assert!(!seen[v], "duplicate vertex in allowed set");
        seen[v] = true;
        if weights[v] > 0.0 {
            local_to_global.push(v);
        }
    }
    let h = local_to_global.len();
    if h == 0 {
        return WeightedSet::empty();
    }
    let mut global_to_local = vec![usize::MAX; graph.n()];
    for (i, &v) in local_to_global.iter().enumerate() {
        global_to_local[v] = i;
    }

    // Local adjacency bitsets.
    let mut adj: Vec<BitSet> = (0..h).map(|_| BitSet::new(h)).collect();
    for (i, &v) in local_to_global.iter().enumerate() {
        for &u in graph.neighbors(v) {
            let j = global_to_local[u];
            if j != usize::MAX {
                adj[i].insert(j);
            }
        }
    }

    // Groups of local indices, members sorted by weight descending, groups
    // sorted by their maximum weight descending (good incumbents early).
    let mut by_group: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &v) in local_to_global.iter().enumerate() {
        by_group.entry(group_of[v]).or_default().push(i);
    }
    let w: Vec<f64> = local_to_global.iter().map(|&v| weights[v]).collect();
    let mut groups: Vec<Vec<usize>> = by_group.into_values().collect();
    for g in &mut groups {
        g.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).expect("finite weights"));
    }
    groups.sort_by(|a, b| w[b[0]].partial_cmp(&w[a[0]]).expect("finite weights"));

    #[cfg(debug_assertions)]
    for g in &groups {
        for (x, &a) in g.iter().enumerate() {
            for &b in &g[x + 1..] {
                debug_assert!(
                    adj[a].contains(b),
                    "group members must form a clique: {} vs {}",
                    local_to_global[a],
                    local_to_global[b]
                );
            }
        }
    }

    let mut searcher = Searcher {
        adj: &adj,
        w: &w,
        groups: &groups,
        best_weight: 0.0,
        best: Vec::new(),
        current: Vec::new(),
    };
    let mut avail = BitSet::new(h);
    for i in 0..h {
        avail.insert(i);
    }
    searcher.branch(0, &avail, 0.0);

    WeightedSet::from_vertices(
        searcher.best.iter().map(|&i| local_to_global[i]).collect(),
        weights,
    )
}

struct Searcher<'a> {
    adj: &'a [BitSet],
    w: &'a [f64],
    groups: &'a [Vec<usize>],
    best_weight: f64,
    best: Vec<usize>,
    current: Vec<usize>,
}

impl Searcher<'_> {
    fn branch(&mut self, gi: usize, avail: &BitSet, current_weight: f64) {
        if gi == self.groups.len() {
            if current_weight > self.best_weight {
                self.best_weight = current_weight;
                self.best = self.current.clone();
            }
            return;
        }
        // Upper bound: current + best available member of every remaining
        // group (inter-group conflicts ignored — admissible).
        let mut bound = current_weight;
        for g in &self.groups[gi..] {
            // Members are weight-sorted descending: first available is best.
            if let Some(&m) = g.iter().find(|&&m| avail.contains(m)) {
                bound += self.w[m];
            }
        }
        if bound <= self.best_weight {
            return;
        }
        // Branch: select each available member (descending weight)…
        for &m in &self.groups[gi] {
            if !avail.contains(m) {
                continue;
            }
            let mut next = avail.clone();
            next.subtract(&self.adj[m]);
            next.remove(m);
            self.current.push(m);
            self.branch(gi + 1, &next, current_weight + self.w[m]);
            self.current.pop();
        }
        // …or skip the group entirely.
        self.branch(gi + 1, avail, current_weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::{topology, ExtendedConflictGraph};

    /// Reference DP for MWIS on a path graph.
    fn path_dp(weights: &[f64]) -> f64 {
        let mut take = 0.0f64;
        let mut skip = 0.0f64;
        for &w in weights {
            let new_take = skip + w.max(0.0);
            let new_skip = take.max(skip);
            take = new_take;
            skip = new_skip;
        }
        take.max(skip)
    }

    /// Brute force by subset enumeration (n ≤ 20).
    fn brute_force(graph: &Graph, weights: &[f64]) -> f64 {
        let n = graph.n();
        assert!(n <= 20);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if graph.is_independent(&set) {
                let w: f64 = set.iter().map(|&v| weights[v]).sum();
                best = best.max(w);
            }
        }
        best
    }

    #[test]
    fn path_matches_dp() {
        let w = [4.0, 5.0, 3.0, 7.0, 2.0, 9.0];
        let g = topology::line(w.len());
        let s = solve(&g, &w);
        assert_eq!(s.weight, path_dp(&w));
        assert!(g.is_independent(&s.vertices));
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let s = solve(&g, &[3.0]);
        assert_eq!(s.vertices, vec![0]);
        assert_eq!(s.weight, 3.0);
    }

    #[test]
    fn zero_weights_are_never_selected() {
        let g = topology::independent(3);
        let s = solve(&g, &[0.0, 1.0, 0.0]);
        assert_eq!(s.vertices, vec![1]);
    }

    #[test]
    fn complete_graph_takes_heaviest() {
        let g = topology::complete(5);
        let s = solve(&g, &[1.0, 9.0, 3.0, 4.0, 2.0]);
        assert_eq!(s.vertices, vec![1]);
        assert_eq!(s.weight, 9.0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let n = rng.gen_range(1..=12);
            let p = rng.gen_range(0.1..0.7);
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < p {
                        g.add_edge(u, v);
                    }
                }
            }
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let s = solve(&g, &w);
            let bf = brute_force(&g, &w);
            assert!(
                (s.weight - bf).abs() < 1e-9,
                "trial {trial}: bb {} vs brute {bf}",
                s.weight
            );
            assert!(g.is_independent(&s.vertices));
        }
    }

    #[test]
    fn grouped_matches_ungrouped_on_h() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let g = topology::ring(5);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / 3).collect();
        let allowed: Vec<usize> = (0..h.n_vertices()).collect();
        let grouped = solve_grouped(h.graph(), &w, &allowed, &groups);
        let plain = solve(h.graph(), &w);
        assert!((grouped.weight - plain.weight).abs() < 1e-9);
        assert!(h.graph().is_independent(&grouped.vertices));
    }

    #[test]
    fn subset_restriction_is_respected() {
        let g = topology::line(5);
        let w = [10.0, 1.0, 10.0, 1.0, 10.0];
        let s = solve_subset(&g, &w, &[1, 2, 3]);
        assert_eq!(s.vertices, vec![2]);
        assert_eq!(s.weight, 10.0);
    }

    #[test]
    fn empty_allowed_set_gives_empty_result() {
        let g = topology::line(3);
        let s = solve_subset(&g, &[1.0, 1.0, 1.0], &[]);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_allowed_vertices_panic() {
        let g = topology::line(3);
        let _ = solve_subset(&g, &[1.0; 3], &[0, 0]);
    }

    #[test]
    fn fifteen_by_three_ground_truth_is_tractable() {
        // The Fig. 7 scale: 15 users × 3 channels. Must solve quickly.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(15);
        let (g, _) = mhca_graph::unit_disk::random_connected_with_average_degree(
            15, 4.0, 100, &mut rng,
        )
        .unwrap();
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / 3).collect();
        let allowed: Vec<usize> = (0..h.n_vertices()).collect();
        let s = solve_grouped(h.graph(), &w, &allowed, &groups);
        assert!(h.graph().is_independent(&s.vertices));
        assert!(s.weight > 0.0);
    }
}
