//! Exact MWIS by branch-and-bound over vertex groups.
//!
//! The solver branches over *groups* of vertices, where each group is
//! promised by the caller to be a clique (so at most one member can be
//! selected). This matches the structure of the extended conflict graph
//! `H`: grouping virtual vertices by master node turns the search into
//! "pick at most one channel per node", which is what the LocalLeader
//! enumeration of Algorithm 3 computes and what the paper's brute-force
//! optimum (Fig. 7, the 15-user × 3-channel instance) needs.
//!
//! For a generic graph, [`solve`] puts every vertex in its own group.
//!
//! Complexity is exponential in the worst case (MWIS is NP-hard); the
//! bound `current + Σ_remaining-groups max-available-weight` prunes
//! aggressively on the geometric instances the paper simulates.

use crate::{bitset::BitSet, set::WeightedSet};
use mhca_graph::Graph;

/// Exact MWIS over the whole graph, each vertex its own group.
///
/// Only vertices with strictly positive weight are ever selected (adding a
/// zero-weight vertex never increases the objective).
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`.
pub fn solve(graph: &Graph, weights: &[f64]) -> WeightedSet {
    let allowed: Vec<usize> = (0..graph.n()).collect();
    solve_subset(graph, weights, &allowed)
}

/// Exact MWIS restricted to the `allowed` vertex set, each vertex its own
/// group.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()` or `allowed` has out-of-range or
/// duplicate entries.
pub fn solve_subset(graph: &Graph, weights: &[f64], allowed: &[usize]) -> WeightedSet {
    let identity: Vec<usize> = (0..graph.n()).collect();
    solve_grouped(graph, weights, allowed, &identity)
}

/// Exact MWIS restricted to `allowed`, with clique groups.
///
/// `group_of[v]` labels each vertex with a group id; all allowed vertices
/// sharing a label **must form a clique** (the solver selects at most one
/// per group and does not re-check pairwise adjacency within a group).
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`, `group_of.len() != graph.n()`,
/// or `allowed` has out-of-range/duplicate entries. In debug builds, also
/// panics if a group is not a clique.
pub fn solve_grouped(
    graph: &Graph,
    weights: &[f64],
    allowed: &[usize],
    group_of: &[usize],
) -> WeightedSet {
    Workspace::new().solve_grouped(graph, weights, allowed, group_of)
}

/// Reusable scratch for the grouped branch-and-bound.
///
/// The LocalLeader path of Algorithm 3 calls the exact solver once per
/// leader per mini-round per slot; with a fresh workspace each call that
/// is a dozen allocations (local index maps, adjacency bitsets, the
/// per-depth availability sets) on the hottest loop of the simulator. A
/// `Workspace` owns all of that scratch and reuses it across calls — after
/// warm-up, [`Workspace::solve_grouped_into`] performs no heap allocation.
///
/// The free functions [`solve`], [`solve_subset`], and [`solve_grouped`]
/// remain as one-shot conveniences over a throwaway workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Graph size the `seen`/`global_to_local` buffers are sized for.
    n: usize,
    seen: Vec<bool>,
    global_to_local: Vec<usize>,
    local_to_global: Vec<usize>,
    /// Local weights, parallel to `local_to_global`.
    w: Vec<f64>,
    /// Local adjacency bitsets (pooled; only the first `h` are live).
    adj: Vec<BitSet>,
    /// Local indices concatenated per group; `group_starts` delimits.
    group_members: Vec<usize>,
    group_starts: Vec<usize>,
    /// Scratch for grouping: `(group id, local index)` pairs and run
    /// bounds `(start, len)`.
    keyed: Vec<(usize, usize)>,
    runs: Vec<(usize, usize)>,
    /// Availability set per search depth.
    avail_stack: Vec<BitSet>,
    best: Vec<usize>,
    current: Vec<usize>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// [`solve_grouped`] against this workspace's reusable buffers,
    /// returning an allocated [`WeightedSet`].
    pub fn solve_grouped(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        allowed: &[usize],
        group_of: &[usize],
    ) -> WeightedSet {
        let mut vertices = Vec::new();
        self.solve_grouped_into(graph, weights, allowed, group_of, &mut vertices);
        WeightedSet::from_vertices(vertices, weights)
    }

    /// Core solver: writes the optimum (sorted ascending) into `out` and
    /// returns its weight. `out` is cleared first; beyond `out`'s own
    /// growth, no allocation happens once the workspace is warm.
    ///
    /// # Panics
    ///
    /// As [`solve_grouped`].
    pub fn solve_grouped_into(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        allowed: &[usize],
        group_of: &[usize],
        out: &mut Vec<usize>,
    ) -> f64 {
        assert_eq!(weights.len(), graph.n(), "weight vector length");
        assert_eq!(group_of.len(), graph.n(), "group vector length");
        out.clear();

        // Local indexing of allowed vertices with positive weight.
        if self.n != graph.n() {
            self.n = graph.n();
            self.seen.clear();
            self.seen.resize(self.n, false);
            self.global_to_local.clear();
            self.global_to_local.resize(self.n, usize::MAX);
        } else {
            self.seen.fill(false);
            self.global_to_local.fill(usize::MAX);
        }
        self.local_to_global.clear();
        self.w.clear();
        for &v in allowed {
            assert!(v < graph.n(), "vertex out of range");
            assert!(!self.seen[v], "duplicate vertex in allowed set");
            self.seen[v] = true;
            if weights[v] > 0.0 {
                self.local_to_global.push(v);
                self.w.push(weights[v]);
            }
        }
        let h = self.local_to_global.len();
        if h == 0 {
            return 0.0;
        }
        for (i, &v) in self.local_to_global.iter().enumerate() {
            self.global_to_local[v] = i;
        }

        // Local adjacency bitsets from the pool.
        if self.adj.len() < h {
            self.adj.resize_with(h, || BitSet::new(0));
        }
        for (i, &v) in self.local_to_global.iter().enumerate() {
            let row = &mut self.adj[i];
            row.reset(h);
            for &u in graph.neighbors(v) {
                let j = self.global_to_local[u];
                if j != usize::MAX {
                    row.insert(j);
                }
            }
        }

        // Group local indices: sort (group, index) pairs so each group is
        // a contiguous run with members in weight-descending order, then
        // order the runs by their best member's weight descending (good
        // incumbents early). All on reused scratch — no maps.
        let w = &self.w;
        self.keyed.clear();
        self.keyed
            .extend((0..h).map(|i| (group_of[self.local_to_global[i]], i)));
        self.keyed.sort_unstable_by(|&(ga, a), &(gb, b)| {
            ga.cmp(&gb)
                .then_with(|| w[b].partial_cmp(&w[a]).expect("finite weights"))
        });
        self.runs.clear();
        let mut start = 0;
        for i in 1..=h {
            if i == h || self.keyed[i].0 != self.keyed[start].0 {
                self.runs.push((start, i - start));
                start = i;
            }
        }
        self.runs.sort_unstable_by(|&(sa, _), &(sb, _)| {
            let (a, b) = (self.keyed[sa].1, self.keyed[sb].1);
            w[b].partial_cmp(&w[a]).expect("finite weights")
        });
        self.group_members.clear();
        self.group_starts.clear();
        self.group_starts.push(0);
        for &(start, len) in &self.runs {
            self.group_members
                .extend(self.keyed[start..start + len].iter().map(|&(_, i)| i));
            self.group_starts.push(self.group_members.len());
        }
        let n_groups = self.group_starts.len() - 1;

        #[cfg(debug_assertions)]
        for g in 0..n_groups {
            let members = &self.group_members[self.group_starts[g]..self.group_starts[g + 1]];
            for (x, &a) in members.iter().enumerate() {
                for &b in &members[x + 1..] {
                    debug_assert!(
                        self.adj[a].contains(b),
                        "group members must form a clique: {} vs {}",
                        self.local_to_global[a],
                        self.local_to_global[b]
                    );
                }
            }
        }

        // Per-depth availability sets (depth d enters group d). Only the
        // root needs initializing: every deeper slot is fully overwritten
        // by `copy_from` before the search reads it.
        if self.avail_stack.len() < n_groups + 1 {
            self.avail_stack
                .resize_with(n_groups + 1, || BitSet::new(0));
        }
        self.avail_stack[0].reset(h);
        self.avail_stack[0].fill();

        self.best.clear();
        self.current.clear();
        let mut search = Search {
            adj: &self.adj[..h],
            w: &self.w,
            group_members: &self.group_members,
            group_starts: &self.group_starts,
            stack: &mut self.avail_stack[..n_groups + 1],
            best: &mut self.best,
            current: &mut self.current,
            best_weight: 0.0,
        };
        search.branch(0, 0.0);

        out.extend(self.best.iter().map(|&i| self.local_to_global[i]));
        out.sort_unstable();
        out.iter().map(|&v| weights[v]).sum()
    }
}

/// Borrowed view of the workspace during one branch-and-bound run.
struct Search<'a> {
    adj: &'a [BitSet],
    w: &'a [f64],
    group_members: &'a [usize],
    group_starts: &'a [usize],
    /// `stack[d]` is the availability set when entering group `d`.
    stack: &'a mut [BitSet],
    best: &'a mut Vec<usize>,
    current: &'a mut Vec<usize>,
    best_weight: f64,
}

impl<'a> Search<'a> {
    fn members(&self, g: usize) -> &'a [usize] {
        &self.group_members[self.group_starts[g]..self.group_starts[g + 1]]
    }

    fn branch(&mut self, gi: usize, current_weight: f64) {
        let n_groups = self.group_starts.len() - 1;
        if gi == n_groups {
            if current_weight > self.best_weight {
                self.best_weight = current_weight;
                self.best.clear();
                self.best.extend_from_slice(self.current);
            }
            return;
        }
        // Upper bound: current + best available member of every remaining
        // group (inter-group conflicts ignored — admissible). Members are
        // weight-sorted descending: first available is best.
        let mut bound = current_weight;
        for g in gi..n_groups {
            if let Some(&m) = self
                .members(g)
                .iter()
                .find(|&&m| self.stack[gi].contains(m))
            {
                bound += self.w[m];
            }
        }
        if bound <= self.best_weight {
            return;
        }
        // Branch: select each available member (descending weight)…
        for &m in self.members(gi) {
            if !self.stack[gi].contains(m) {
                continue;
            }
            {
                let (head, tail) = self.stack.split_at_mut(gi + 1);
                let next = &mut tail[0];
                next.copy_from(&head[gi]);
                next.subtract(&self.adj[m]);
                next.remove(m);
            }
            self.current.push(m);
            self.branch(gi + 1, current_weight + self.w[m]);
            self.current.pop();
        }
        // …or skip the group entirely.
        {
            let (head, tail) = self.stack.split_at_mut(gi + 1);
            tail[0].copy_from(&head[gi]);
        }
        self.branch(gi + 1, current_weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::{topology, ExtendedConflictGraph};

    /// Reference DP for MWIS on a path graph.
    fn path_dp(weights: &[f64]) -> f64 {
        let mut take = 0.0f64;
        let mut skip = 0.0f64;
        for &w in weights {
            let new_take = skip + w.max(0.0);
            let new_skip = take.max(skip);
            take = new_take;
            skip = new_skip;
        }
        take.max(skip)
    }

    /// Brute force by subset enumeration (n ≤ 20).
    fn brute_force(graph: &Graph, weights: &[f64]) -> f64 {
        let n = graph.n();
        assert!(n <= 20);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if graph.is_independent(&set) {
                let w: f64 = set.iter().map(|&v| weights[v]).sum();
                best = best.max(w);
            }
        }
        best
    }

    #[test]
    fn path_matches_dp() {
        let w = [4.0, 5.0, 3.0, 7.0, 2.0, 9.0];
        let g = topology::line(w.len());
        let s = solve(&g, &w);
        assert_eq!(s.weight, path_dp(&w));
        assert!(g.is_independent(&s.vertices));
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let s = solve(&g, &[3.0]);
        assert_eq!(s.vertices, vec![0]);
        assert_eq!(s.weight, 3.0);
    }

    #[test]
    fn zero_weights_are_never_selected() {
        let g = topology::independent(3);
        let s = solve(&g, &[0.0, 1.0, 0.0]);
        assert_eq!(s.vertices, vec![1]);
    }

    #[test]
    fn complete_graph_takes_heaviest() {
        let g = topology::complete(5);
        let s = solve(&g, &[1.0, 9.0, 3.0, 4.0, 2.0]);
        assert_eq!(s.vertices, vec![1]);
        assert_eq!(s.weight, 9.0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let n = rng.gen_range(1..=12);
            let p = rng.gen_range(0.1..0.7);
            let mut g = Graph::builder(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < p {
                        g.add_edge(u, v);
                    }
                }
            }
            let g = g.build();
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let s = solve(&g, &w);
            let bf = brute_force(&g, &w);
            assert!(
                (s.weight - bf).abs() < 1e-9,
                "trial {trial}: bb {} vs brute {bf}",
                s.weight
            );
            assert!(g.is_independent(&s.vertices));
        }
    }

    #[test]
    fn grouped_matches_ungrouped_on_h() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let g = topology::ring(5);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / 3).collect();
        let allowed: Vec<usize> = (0..h.n_vertices()).collect();
        let grouped = solve_grouped(h.graph(), &w, &allowed, &groups);
        let plain = solve(h.graph(), &w);
        assert!((grouped.weight - plain.weight).abs() < 1e-9);
        assert!(h.graph().is_independent(&grouped.vertices));
    }

    #[test]
    fn subset_restriction_is_respected() {
        let g = topology::line(5);
        let w = [10.0, 1.0, 10.0, 1.0, 10.0];
        let s = solve_subset(&g, &w, &[1, 2, 3]);
        assert_eq!(s.vertices, vec![2]);
        assert_eq!(s.weight, 10.0);
    }

    #[test]
    fn empty_allowed_set_gives_empty_result() {
        let g = topology::line(3);
        let s = solve_subset(&g, &[1.0, 1.0, 1.0], &[]);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_allowed_vertices_panic() {
        let g = topology::line(3);
        let _ = solve_subset(&g, &[1.0; 3], &[0, 0]);
    }

    #[test]
    fn workspace_reuse_matches_one_shot_across_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        for trial in 0..30 {
            // Vary the size so the workspace is exercised across resizes.
            let n = rng.gen_range(1..=11);
            let p = rng.gen_range(0.1..0.7);
            let mut g = Graph::builder(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < p {
                        g.add_edge(u, v);
                    }
                }
            }
            let g = g.build();
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let allowed: Vec<usize> = (0..n).collect();
            let singleton: Vec<usize> = (0..n).collect();
            let fresh = solve_grouped(&g, &w, &allowed, &singleton);
            let weight = ws.solve_grouped_into(&g, &w, &allowed, &singleton, &mut out);
            assert_eq!(out, fresh.vertices, "trial {trial}");
            assert!((weight - fresh.weight).abs() < 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn fifteen_by_three_ground_truth_is_tractable() {
        // The Fig. 7 scale: 15 users × 3 channels. Must solve quickly.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(15);
        let (g, _) =
            mhca_graph::unit_disk::random_connected_with_average_degree(15, 4.0, 100, &mut rng)
                .unwrap();
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / 3).collect();
        let allowed: Vec<usize> = (0..h.n_vertices()).collect();
        let s = solve_grouped(h.graph(), &w, &allowed, &groups);
        assert!(h.graph().is_independent(&s.vertices));
        assert!(s.weight > 0.0);
    }
}
