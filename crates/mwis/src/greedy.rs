//! Greedy MWIS baselines.
//!
//! Section IV-C of the paper notes that "in practice, we can use a more
//! efficient constant approximation algorithm instead" of the local
//! enumeration; these greedy solvers are those practical stand-ins and the
//! quality baselines for the `mwis_solvers` bench.

use crate::set::WeightedSet;
use mhca_graph::Graph;

/// Greedy by maximum weight: repeatedly select the heaviest remaining
/// vertex and delete its closed neighborhood.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`.
pub fn max_weight(graph: &Graph, weights: &[f64]) -> WeightedSet {
    let allowed: Vec<usize> = (0..graph.n()).collect();
    max_weight_subset(graph, weights, &allowed)
}

/// [`max_weight`] restricted to an allowed vertex set.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()` or `allowed` is out of range.
pub fn max_weight_subset(graph: &Graph, weights: &[f64], allowed: &[usize]) -> WeightedSet {
    let mut scratch = Scratch::default();
    let mut out = Vec::new();
    max_weight_subset_into(graph, weights, allowed, &mut scratch, &mut out);
    WeightedSet::from_vertices(out, weights)
}

/// Reusable buffers for [`max_weight_subset_into`].
#[derive(Debug, Default)]
pub struct Scratch {
    alive: Vec<bool>,
    order: Vec<usize>,
}

/// As [`max_weight_subset`], writing the chosen set (sorted ascending)
/// into `out` and returning its weight. With a warm `scratch`, the call
/// performs no heap allocation — this is the hot fallback of the
/// distributed decision's `Auto` local solver.
///
/// # Panics
///
/// As [`max_weight_subset`].
pub fn max_weight_subset_into(
    graph: &Graph,
    weights: &[f64],
    allowed: &[usize],
    scratch: &mut Scratch,
    out: &mut Vec<usize>,
) -> f64 {
    assert_eq!(weights.len(), graph.n(), "weight vector length");
    scratch.alive.clear();
    scratch.alive.resize(graph.n(), false);
    let alive = &mut scratch.alive;
    for &v in allowed {
        assert!(v < graph.n(), "vertex out of range");
        alive[v] = weights[v] > 0.0;
    }
    scratch.order.clear();
    scratch
        .order
        .extend(allowed.iter().copied().filter(|&v| alive[v]));
    // The id tie-break makes the order total, so the unstable sort is
    // deterministic (and allocation-free, unlike the stable sort).
    scratch.order.sort_unstable_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    out.clear();
    for &v in &scratch.order {
        if alive[v] {
            out.push(v);
            alive[v] = false;
            for &u in graph.neighbors(v) {
                alive[u] = false;
            }
        }
    }
    out.sort_unstable();
    out.iter().map(|&v| weights[v]).sum()
}

/// GWMIN greedy: repeatedly select the vertex maximizing
/// `w(v) / (deg(v) + 1)` in the *remaining* graph, then delete its closed
/// neighborhood. Guarantees `W ≥ Σ_v w(v)/(deg(v)+1)` (Sakai–Togasaki–
/// Yamazaki), a useful quality floor on bounded-degree conflict graphs.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`.
pub fn weight_degree(graph: &Graph, weights: &[f64]) -> WeightedSet {
    assert_eq!(weights.len(), graph.n(), "weight vector length");
    let n = graph.n();
    let mut alive: Vec<bool> = weights.iter().map(|&w| w > 0.0).collect();
    let mut deg: Vec<usize> = (0..n)
        .map(|v| graph.neighbors(v).iter().filter(|&&u| alive[u]).count())
        .collect();
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if alive[v] {
                let score = weights[v] / (deg[v] + 1) as f64;
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, v));
                }
            }
        }
        let Some((_, v)) = best else { break };
        chosen.push(v);
        // Remove closed neighborhood and maintain degrees.
        let mut removed = vec![v];
        removed.extend(graph.neighbors(v).iter().copied().filter(|&u| alive[u]));
        for &u in &removed {
            alive[u] = false;
        }
        for &u in &removed {
            for &x in graph.neighbors(u) {
                if alive[x] && deg[x] > 0 {
                    deg[x] -= 1;
                }
            }
        }
    }
    WeightedSet::from_vertices(chosen, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn max_weight_on_star_prefers_heavy_hub() {
        let g = topology::star(4);
        let s = max_weight(&g, &[10.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.vertices, vec![0]);
        assert_eq!(s.weight, 10.0);
    }

    #[test]
    fn max_weight_on_star_prefers_heavy_leaves() {
        let g = topology::star(4);
        let s = max_weight(&g, &[2.0, 3.0, 3.0, 3.0]);
        assert_eq!(s.vertices, vec![1, 2, 3]);
        assert_eq!(s.weight, 9.0);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_independent() {
        // Path with weights where greedy takes the middle vertex.
        let g = topology::line(3);
        let w = [3.0, 4.0, 3.0];
        let s = max_weight(&g, &w);
        assert_eq!(s.vertices, vec![1]); // optimal is {0,2} weight 6
        assert!(g.is_independent(&s.vertices));
    }

    #[test]
    fn weight_degree_beats_plain_greedy_here() {
        let g = topology::line(3);
        let w = [3.0, 4.0, 3.0];
        let s = weight_degree(&g, &w);
        assert_eq!(s.vertices, vec![0, 2]); // 3/1 > 4/3: takes the ends
        assert_eq!(s.weight, 6.0);
    }

    #[test]
    fn gwmin_lower_bound_holds() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
            let w: Vec<f64> = (0..40).map(|_| rng.gen_range(0.1..1.0)).collect();
            let s = weight_degree(&g, &w);
            let floor: f64 = (0..40).map(|v| w[v] / (g.degree(v) + 1) as f64).sum();
            assert!(
                s.weight >= floor - 1e-9,
                "GWMIN bound violated: {} < {floor}",
                s.weight
            );
            assert!(g.is_independent(&s.vertices));
        }
    }

    #[test]
    fn subset_restriction() {
        let g = topology::line(4);
        let s = max_weight_subset(&g, &[9.0, 1.0, 1.0, 9.0], &[1, 2]);
        assert_eq!(s.vertices.len(), 1);
        assert!(g.is_independent(&s.vertices));
    }

    #[test]
    fn empty_graph_gives_empty_set() {
        let g = mhca_graph::Graph::new(0);
        assert!(max_weight(&g, &[]).is_empty());
        assert!(weight_degree(&g, &[]).is_empty());
    }
}
