//! Maximum weighted independent set (MWIS) solvers.
//!
//! Throughput-optimal channel allocation in the paper reduces to MWIS on
//! the extended conflict graph `H` (Eq. (2)); this crate provides every
//! solver the reproduction needs:
//!
//! * [`exact`] — branch-and-bound over vertex *groups* (each group is a
//!   clique: at most one member selected). For `H`, grouping by master node
//!   exploits the per-node channel cliques; for a generic graph every
//!   vertex is its own group. Used for ground truth (the paper's brute-force
//!   optimum in Fig. 7) and for the LocalLeader enumeration of Algorithm 3.
//! * [`greedy`] — classic max-weight and weight/degree greedy baselines
//!   ("more efficient constant approximation algorithm" per Section IV-C).
//! * [`robust_ptas`] — the centralized robust PTAS of Nieberg–Hurink–Kern
//!   (paper Section IV-B): grows `r`-hop neighborhoods around the heaviest
//!   remaining vertex until `W(MWIS(J_{r+1})) ≤ ρ·W(MWIS(J_r))`.
//! * [`verify`] — independence and approximation-ratio checks.
//!
//! # Example
//!
//! ```
//! use mhca_graph::topology;
//! use mhca_mwis::{exact, greedy, robust_ptas};
//!
//! let g = topology::line(5);
//! let w = [1.0, 2.0, 3.0, 2.0, 1.0];
//! let opt = exact::solve(&g, &w);
//! assert_eq!(opt.vertices, vec![0, 2, 4]); // weight 5
//! assert_eq!(opt.weight, 5.0);
//!
//! let ptas = robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon(0.5));
//! assert!(ptas.weight >= opt.weight / 1.5 - 1e-9);
//! assert!(g.is_independent(&ptas.vertices));
//!
//! let gr = greedy::max_weight(&g, &w);
//! assert!(g.is_independent(&gr.vertices));
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod exact;
pub mod greedy;
pub mod local_search;
pub mod robust_ptas;
pub mod verify;

mod bitset;
mod set;

pub use set::WeightedSet;
