//! Local-search improvement over greedy MWIS.
//!
//! Starts from the max-weight greedy solution and applies
//! **(1,2)-swaps** until fixpoint: remove one selected vertex and insert
//! two non-adjacent vertices from its freed neighborhood whenever that
//! increases total weight, plus plain single-vertex insertions. On
//! unit-disk-style graphs this closes most of the gap between greedy and
//! exact at a small polynomial cost, making it a better "practical
//! constant-approximation" LocalLeader solver than plain greedy
//! (Section IV-C's remark).

use crate::{greedy, set::WeightedSet};
use mhca_graph::Graph;

/// Greedy followed by (1,2)-swap local search until no improving move
/// exists (or `max_passes` sweeps were made).
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`.
pub fn solve(graph: &Graph, weights: &[f64], max_passes: usize) -> WeightedSet {
    let allowed: Vec<usize> = (0..graph.n()).collect();
    solve_subset(graph, weights, &allowed, max_passes)
}

/// [`solve`] restricted to an allowed vertex set.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()` or `allowed` is out of range.
pub fn solve_subset(
    graph: &Graph,
    weights: &[f64],
    allowed: &[usize],
    max_passes: usize,
) -> WeightedSet {
    assert_eq!(weights.len(), graph.n(), "weight vector length");
    let n = graph.n();
    let mut allowed_mask = vec![false; n];
    for &v in allowed {
        assert!(v < n, "vertex out of range");
        allowed_mask[v] = weights[v] > 0.0;
    }

    let start = greedy::max_weight_subset(graph, weights, allowed);
    let mut in_set = vec![false; n];
    for &v in &start.vertices {
        in_set[v] = true;
    }
    // blocked[v] = number of selected neighbors of v.
    let mut blocked = vec![0usize; n];
    for &v in &start.vertices {
        for &u in graph.neighbors(v) {
            blocked[u] += 1;
        }
    }

    for _ in 0..max_passes {
        let mut improved = false;

        // Free insertions: any allowed, unblocked, unselected vertex.
        for v in 0..n {
            if allowed_mask[v] && !in_set[v] && blocked[v] == 0 {
                in_set[v] = true;
                for &u in graph.neighbors(v) {
                    blocked[u] += 1;
                }
                improved = true;
            }
        }

        // (1,2)-swaps: drop w, insert two of its neighbors.
        for w in 0..n {
            if !in_set[w] {
                continue;
            }
            // Candidates become unblocked only by removing w.
            let cands: Vec<usize> = graph
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&v| allowed_mask[v] && !in_set[v] && blocked[v] == 1)
                .collect();
            let mut best: Option<(f64, usize, usize)> = None;
            for (i, &a) in cands.iter().enumerate() {
                for &b in &cands[i + 1..] {
                    if !graph.has_edge(a, b) {
                        let gain = weights[a] + weights[b] - weights[w];
                        if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                            best = Some((gain, a, b));
                        }
                    }
                }
            }
            if let Some((_, a, b)) = best {
                in_set[w] = false;
                for &u in graph.neighbors(w) {
                    blocked[u] -= 1;
                }
                for v in [a, b] {
                    in_set[v] = true;
                    for &u in graph.neighbors(v) {
                        blocked[u] += 1;
                    }
                }
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }

    let chosen: Vec<usize> = (0..n).filter(|&v| in_set[v]).collect();
    debug_assert!(graph.is_independent(&chosen));
    WeightedSet::from_vertices(chosen, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use mhca_graph::topology;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn fixes_the_classic_greedy_trap() {
        // Path 3-4-3: greedy takes the middle (4); a (1,2)-swap recovers
        // the optimal ends (6).
        let g = topology::line(3);
        let w = [3.0, 4.0, 3.0];
        let s = solve(&g, &w, 10);
        assert_eq!(s.vertices, vec![0, 2]);
        assert_eq!(s.weight, 6.0);
    }

    #[test]
    fn never_worse_than_greedy() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
            let w: Vec<f64> = (0..40).map(|_| rng.gen_range(0.1..1.0)).collect();
            let gr = greedy::max_weight(&g, &w);
            let ls = solve(&g, &w, 20);
            assert!(ls.weight >= gr.weight - 1e-9);
            assert!(g.is_independent(&ls.vertices));
        }
    }

    #[test]
    fn closes_most_of_the_gap_to_exact_on_unit_disks() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut ls_total = 0.0;
        let mut opt_total = 0.0;
        for _ in 0..15 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(20, 4.0, &mut rng);
            let w: Vec<f64> = (0..20).map(|_| rng.gen_range(0.1..1.0)).collect();
            ls_total += solve(&g, &w, 20).weight;
            opt_total += exact::solve(&g, &w).weight;
        }
        assert!(
            ls_total >= 0.95 * opt_total,
            "local search {ls_total} vs exact {opt_total}"
        );
    }

    #[test]
    fn subset_restriction_respected() {
        let g = topology::line(5);
        let w = [10.0, 1.0, 10.0, 1.0, 10.0];
        let s = solve_subset(&g, &w, &[1, 2, 3], 10);
        for &v in &s.vertices {
            assert!((1..=3).contains(&v));
        }
        assert_eq!(s.weight, 10.0);
    }

    #[test]
    fn zero_passes_is_plain_greedy() {
        let g = topology::line(3);
        let w = [3.0, 4.0, 3.0];
        let s = solve(&g, &w, 0);
        assert_eq!(s.vertices, vec![1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(solve(&g, &[], 5).is_empty());
    }
}
