//! The centralized robust PTAS of Nieberg–Hurink–Kern (paper Section IV-B).
//!
//! Starting from the heaviest remaining vertex `v`, grow `r`-hop
//! neighborhoods `J_r(v)` and compute exact local MWISes until the growth
//! criterion `W(MWIS(J_{r+1})) > ρ·W(MWIS(J_r))` fails at some `r̄`; keep
//! `MWIS(J_r̄)`, delete `J_{r̄+1}(v)`, repeat on the remainder. On
//! growth-bounded graphs `r̄` is a constant (`ρ^r ≤ M·(2r+1)²` in the
//! extended graph `H`, Theorem 2) and the union of the kept local solutions
//! is a `ρ`-approximation of the global MWIS.
//!
//! The paper phrases the deletion step as removing the local MWIS and its
//! adjacent vertices; we implement the `(r̄+1)`-neighborhood deletion of the
//! original robust-PTAS paper, which the cited approximation proof uses
//! (see DESIGN.md, Substitutions).

use crate::{exact, set::WeightedSet};
use mhca_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the robust PTAS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Approximation target `ρ = 1 + ε` (must be `> 1`).
    pub rho: f64,
    /// Optional cap on the neighborhood radius `r̄`. The paper's
    /// simulations fix `r = 2`; capping trades the `ρ` guarantee for
    /// bounded local work.
    pub max_r: Option<usize>,
}

impl Config {
    /// Config with `ρ = 1 + ε` and unbounded radius.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Config {
            rho: 1.0 + epsilon,
            max_r: None,
        }
    }

    /// Config with `ρ = 1 + ε` and radius capped at `max_r`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn with_epsilon_and_max_r(epsilon: f64, max_r: usize) -> Self {
        let mut c = Config::with_epsilon(epsilon);
        c.max_r = Some(max_r);
        c
    }
}

impl Default for Config {
    /// `ε = 0.5` (ρ = 1.5), unbounded radius.
    fn default() -> Self {
        Config::with_epsilon(0.5)
    }
}

/// Runs the robust PTAS with every vertex its own group.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()` or `cfg.rho <= 1`.
pub fn solve(graph: &Graph, weights: &[f64], cfg: &Config) -> WeightedSet {
    let identity: Vec<usize> = (0..graph.n()).collect();
    solve_grouped(graph, weights, cfg, &identity)
}

/// Runs the robust PTAS with clique groups forwarded to the exact local
/// solver (see [`exact::solve_grouped`]); for the extended graph `H`, pass
/// the master-node labels.
///
/// # Panics
///
/// Panics if `weights.len() != graph.n()`, `group_of.len() != graph.n()`,
/// or `cfg.rho <= 1`.
pub fn solve_grouped(
    graph: &Graph,
    weights: &[f64],
    cfg: &Config,
    group_of: &[usize],
) -> WeightedSet {
    assert_eq!(weights.len(), graph.n(), "weight vector length");
    assert!(cfg.rho > 1.0, "rho must exceed 1");
    let n = graph.n();
    let mut alive = vec![true; n];
    let mut solution = WeightedSet::empty();

    let heaviest_alive = |alive: &[bool]| {
        (0..n)
            .filter(|&v| alive[v] && weights[v] > 0.0)
            .max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).expect("finite"))
    };
    while let Some(v_max) = heaviest_alive(&alive) {
        // Grow neighborhoods until the ρ-criterion (or the cap) stops us.
        let mut r_bar = 0usize;
        let mut prev = exact::solve_grouped(
            graph,
            weights,
            &alive_ball(graph, &alive, v_max, 0),
            group_of,
        );
        loop {
            if cfg.max_r.is_some_and(|cap| r_bar >= cap) {
                break;
            }
            let next_ball = alive_ball(graph, &alive, v_max, r_bar + 1);
            let next = exact::solve_grouped(graph, weights, &next_ball, group_of);
            if next.weight > cfg.rho * prev.weight {
                prev = next;
                r_bar += 1;
            } else {
                break;
            }
        }

        solution.union(&prev);
        for v in alive_ball(graph, &alive, v_max, r_bar + 1) {
            alive[v] = false;
        }
    }
    solution
}

/// BFS ball of radius `r` around `v` restricted to alive vertices,
/// sorted ascending.
fn alive_ball(graph: &Graph, alive: &[bool], v: usize, r: usize) -> Vec<usize> {
    debug_assert!(alive[v]);
    let mut dist = vec![usize::MAX; graph.n()];
    dist[v] = 0;
    let mut out = vec![v];
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        if dist[u] == r {
            continue;
        }
        for &w in graph.neighbors(u) {
            if alive[w] && dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, p: f64, rng: &mut StdRng) -> Graph {
        let mut g = Graph::builder(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    g.add_edge(u, v);
                }
            }
        }
        g.build()
    }

    #[test]
    fn output_is_always_independent() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let n = rng.gen_range(1..=25);
            let g = random_graph(n, 0.3, &mut rng);
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            let s = solve(&g, &w, &Config::with_epsilon(0.5));
            assert!(g.is_independent(&s.vertices));
        }
    }

    #[test]
    fn respects_rho_guarantee_when_uncapped() {
        let mut rng = StdRng::seed_from_u64(32);
        for eps in [0.2, 0.5, 1.0] {
            let cfg = Config::with_epsilon(eps);
            for _ in 0..20 {
                let n = rng.gen_range(1..=14);
                let g = random_graph(n, 0.35, &mut rng);
                let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
                let opt = exact::solve(&g, &w);
                let s = solve(&g, &w, &cfg);
                assert!(
                    s.weight * cfg.rho >= opt.weight - 1e-9,
                    "eps={eps}: ptas {} vs opt {}",
                    s.weight,
                    opt.weight
                );
            }
        }
    }

    #[test]
    fn exact_on_isolated_vertices() {
        let g = topology::independent(5);
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = solve(&g, &w, &Config::default());
        assert_eq!(s.vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.weight, 15.0);
    }

    #[test]
    fn capped_radius_still_independent() {
        let mut rng = StdRng::seed_from_u64(33);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(60, 6.0, &mut rng);
        let w: Vec<f64> = (0..60).map(|_| rng.gen_range(0.1..1.0)).collect();
        let cfg = Config::with_epsilon_and_max_r(0.5, 2);
        let s = solve(&g, &w, &cfg);
        assert!(g.is_independent(&s.vertices));
        assert!(s.weight > 0.0);
    }

    #[test]
    fn capped_quality_on_unit_disk_is_reasonable() {
        // With r capped at 2 the formal guarantee lapses, but on random
        // unit-disk instances the output should stay close to optimal.
        let mut rng = StdRng::seed_from_u64(34);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(18, 4.0, &mut rng);
        let w: Vec<f64> = (0..18).map(|_| rng.gen_range(0.1..1.0)).collect();
        let opt = exact::solve(&g, &w);
        let s = solve(&g, &w, &Config::with_epsilon_and_max_r(0.5, 2));
        assert!(
            s.weight >= 0.6 * opt.weight,
            "{} vs {}",
            s.weight,
            opt.weight
        );
    }

    #[test]
    fn zero_weight_graph_gives_empty_solution() {
        let g = topology::line(4);
        let s = solve(&g, &[0.0; 4], &Config::default());
        assert!(s.is_empty());
    }

    #[test]
    fn smaller_epsilon_is_at_least_as_good_on_average() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut tight_total = 0.0;
        let mut loose_total = 0.0;
        for _ in 0..20 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
            let w: Vec<f64> = (0..40).map(|_| rng.gen_range(0.1..1.0)).collect();
            tight_total += solve(&g, &w, &Config::with_epsilon(0.1)).weight;
            loose_total += solve(&g, &w, &Config::with_epsilon(2.0)).weight;
        }
        assert!(
            tight_total >= loose_total - 1e-9,
            "tight {tight_total} < loose {loose_total}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        let _ = Config::with_epsilon(0.0);
    }
}
