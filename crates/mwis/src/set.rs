//! Solver result type.

use serde::{Deserialize, Serialize};

/// An independent set together with its total weight.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightedSet {
    /// Selected vertices, sorted ascending.
    pub vertices: Vec<usize>,
    /// Sum of the selected vertices' weights.
    pub weight: f64,
}

impl WeightedSet {
    /// The empty set with zero weight.
    pub fn empty() -> Self {
        WeightedSet::default()
    }

    /// Builds a set from vertices and a weight vector, sorting the vertices
    /// and summing their weights.
    pub fn from_vertices(mut vertices: Vec<usize>, weights: &[f64]) -> Self {
        vertices.sort_unstable();
        let weight = vertices.iter().map(|&v| weights[v]).sum();
        WeightedSet { vertices, weight }
    }

    /// Number of selected vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when no vertex is selected.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Merges another disjoint set into this one.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the sets share a vertex.
    pub fn union(&mut self, other: &WeightedSet) {
        debug_assert!(
            other.vertices.iter().all(|v| !self.vertices.contains(v)),
            "sets must be disjoint"
        );
        self.vertices.extend_from_slice(&other.vertices);
        self.vertices.sort_unstable();
        self.weight += other.weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vertices_sorts_and_sums() {
        let s = WeightedSet::from_vertices(vec![3, 1], &[0.0, 2.0, 0.0, 5.0]);
        assert_eq!(s.vertices, vec![1, 3]);
        assert_eq!(s.weight, 7.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set() {
        let s = WeightedSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.weight, 0.0);
    }

    #[test]
    fn union_accumulates() {
        let mut a = WeightedSet::from_vertices(vec![0], &[1.0, 2.0, 4.0]);
        let b = WeightedSet::from_vertices(vec![2], &[1.0, 2.0, 4.0]);
        a.union(&b);
        assert_eq!(a.vertices, vec![0, 2]);
        assert_eq!(a.weight, 5.0);
    }
}
