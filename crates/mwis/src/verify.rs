//! Verification helpers for solver outputs.

use mhca_graph::Graph;

/// Total weight of a vertex set.
///
/// # Panics
///
/// Panics if a vertex is out of range of `weights`.
pub fn weight_of(weights: &[f64], set: &[usize]) -> f64 {
    set.iter().map(|&v| weights[v]).sum()
}

/// `achieved / optimal`, defined as 1 when both are zero.
///
/// # Panics
///
/// Panics if `optimal < achieved` beyond floating-point noise is *not*
/// checked here — callers comparing an approximation against an exact
/// optimum may legitimately pass `achieved > optimal` when "optimal" is
/// itself approximate.
pub fn ratio(achieved: f64, optimal: f64) -> f64 {
    if optimal == 0.0 {
        if achieved == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        achieved / optimal
    }
}

/// Asserts a set is independent, returning it for chaining.
///
/// # Panics
///
/// Panics if the set is not independent in `graph`.
pub fn assert_independent<'a>(graph: &Graph, set: &'a [usize]) -> &'a [usize] {
    assert!(graph.is_independent(set), "set is not independent");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn weight_of_sums() {
        assert_eq!(weight_of(&[1.0, 2.0, 3.0], &[0, 2]), 4.0);
        assert_eq!(weight_of(&[1.0], &[]), 0.0);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(1.0, 2.0), 0.5);
        assert_eq!(ratio(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn assert_independent_passes_through() {
        let g = topology::line(3);
        assert_eq!(assert_independent(&g, &[0, 2]), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "not independent")]
    fn assert_independent_panics_on_conflict() {
        let g = topology::line(3);
        let _ = assert_independent(&g, &[0, 1]);
    }
}
