//! Property-based tests for the MWIS solvers against subset-enumeration
//! brute force.

use mhca_graph::Graph;
use mhca_mwis::{exact, greedy, robust_ptas, verify};
use proptest::prelude::*;

fn arb_weighted_graph(max_n: usize) -> impl Strategy<Value = (Graph, Vec<f64>)> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        let weights = proptest::collection::vec(0.0f64..5.0, n..=n);
        (edges, weights).prop_map(move |(es, w)| {
            let mut g = Graph::builder(n);
            for (u, v) in es {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            (g.build(), w)
        })
    })
}

fn brute_force(g: &Graph, w: &[f64]) -> f64 {
    let n = g.n();
    assert!(n <= 16);
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if g.is_independent(&set) {
            best = best.max(set.iter().map(|&v| w[v]).sum());
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_equals_brute_force((g, w) in arb_weighted_graph(12)) {
        let s = exact::solve(&g, &w);
        let bf = brute_force(&g, &w);
        prop_assert!((s.weight - bf).abs() < 1e-9, "bb {} vs brute {}", s.weight, bf);
        prop_assert!(g.is_independent(&s.vertices));
        prop_assert!((verify::weight_of(&w, &s.vertices) - s.weight).abs() < 1e-9);
    }

    #[test]
    fn grouped_with_singleton_groups_matches_plain((g, w) in arb_weighted_graph(10)) {
        let identity: Vec<usize> = (0..g.n()).collect();
        let allowed: Vec<usize> = (0..g.n()).collect();
        let a = exact::solve(&g, &w);
        let b = exact::solve_grouped(&g, &w, &allowed, &identity);
        prop_assert!((a.weight - b.weight).abs() < 1e-9);
    }

    #[test]
    fn greedy_solvers_are_independent_and_bounded((g, w) in arb_weighted_graph(14)) {
        let opt = exact::solve(&g, &w);
        for s in [greedy::max_weight(&g, &w), greedy::weight_degree(&g, &w)] {
            prop_assert!(g.is_independent(&s.vertices));
            prop_assert!(s.weight <= opt.weight + 1e-9);
        }
        // Max-weight greedy (but not GWMIN, which may trade a heavy
        // high-degree vertex for light low-degree ones) is at least the
        // single heaviest vertex.
        let heaviest = w.iter().cloned().fold(0.0, f64::max);
        let mw = greedy::max_weight(&g, &w);
        prop_assert!(mw.weight >= heaviest - 1e-9);
        // GWMIN still satisfies its own Σ w/(deg+1) floor.
        let gw = greedy::weight_degree(&g, &w);
        let floor: f64 = (0..g.n()).map(|v| w[v] / (g.degree(v) + 1) as f64).sum();
        prop_assert!(gw.weight >= floor - 1e-9);
    }

    #[test]
    fn ptas_ratio_and_monotonicity((g, w) in arb_weighted_graph(10)) {
        let opt = exact::solve(&g, &w);
        let tight = robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon(0.1));
        let loose = robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon(2.0));
        prop_assert!(tight.weight * 1.1 >= opt.weight - 1e-9);
        prop_assert!(loose.weight * 3.0 >= opt.weight - 1e-9);
        prop_assert!(g.is_independent(&tight.vertices));
        prop_assert!(g.is_independent(&loose.vertices));
    }

    #[test]
    fn subset_solutions_stay_in_subset((g, w) in arb_weighted_graph(12)) {
        let allowed: Vec<usize> = (0..g.n()).filter(|v| v % 2 == 0).collect();
        let s = exact::solve_subset(&g, &w, &allowed);
        for &v in &s.vertices {
            prop_assert!(allowed.contains(&v));
        }
        let gr = greedy::max_weight_subset(&g, &w, &allowed);
        for &v in &gr.vertices {
            prop_assert!(allowed.contains(&v));
        }
        prop_assert!(gr.weight <= s.weight + 1e-9);
    }

    #[test]
    fn capped_ptas_is_never_worse_than_half_greedy((g, w) in arb_weighted_graph(12)) {
        let capped = robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon_and_max_r(0.5, 1));
        prop_assert!(g.is_independent(&capped.vertices));
        // r=0 pieces are single max-weight vertices; the union dominates
        // picking just the heaviest vertex.
        let heaviest = w.iter().cloned().fold(0.0, f64::max);
        prop_assert!(capped.weight >= heaviest - 1e-9);
    }
}
