//! Per-session event bus: the in-memory stream `watch` reads from.
//!
//! Every session owns one [`EventBus`]. The supervisor publishes
//! lifecycle events (submitted, seed done, checkpointed, …) and
//! [`BusSink`] forwards the session's telemetry events (incremental
//! observer counters, window-close gauges, phase histograms), so a
//! `watch` client sees live metrics per decision period without the
//! run writing anything to disk.
//!
//! The bus is a bounded ring: old events are dropped once the buffer
//! exceeds [`EventBus::capacity`], and readers that fell behind observe
//! a gap in sequence numbers (reported, not hidden) plus a
//! [`dropped_events`](EventBus::dropped_events) counter the `watch`
//! stream surfaces. Readers block on a condvar with a timeout, so a
//! `watch` connection can also notice session termination promptly.

use crate::relock;
use mhca_telemetry::{Event, TraceSink};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

struct BusInner {
    next_seq: u64,
    events: VecDeque<(u64, String)>,
    dropped: u64,
    closed: bool,
}

/// Bounded, sequence-numbered broadcast buffer of serialized event lines.
pub struct EventBus {
    capacity: usize,
    inner: Mutex<BusInner>,
    cond: Condvar,
}

impl EventBus {
    /// A bus retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventBus {
            capacity: capacity.max(1),
            inner: Mutex::new(BusInner {
                next_seq: 0,
                events: VecDeque::new(),
                dropped: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event line and wakes all readers. No-op on a closed
    /// bus.
    pub fn publish(&self, line: String) {
        let mut inner = relock(&self.inner);
        if inner.closed {
            return;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back((seq, line));
        while inner.events.len() > self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Closes the bus (session reached a terminal state); readers drain
    /// what remains and then observe the closure.
    pub fn close(&self) {
        relock(&self.inner).closed = true;
        self.cond.notify_all();
    }

    /// Sequence number the next published event will get.
    pub fn next_seq(&self) -> u64 {
        relock(&self.inner).next_seq
    }

    /// Events evicted from the ring so far — how far behind the slowest
    /// possible reader is. Surfaced to `watch` clients so a gap in
    /// sequence numbers is attributable to backpressure, not a bug.
    pub fn dropped_events(&self) -> u64 {
        relock(&self.inner).dropped
    }

    /// Reads events with sequence `>= from`, blocking up to `timeout`
    /// when none are available yet. Returns the events and whether the
    /// bus is closed (a closed bus with an empty result means the
    /// stream is finished).
    pub fn read_from(&self, from: u64, timeout: Duration) -> (Vec<(u64, String)>, bool) {
        let mut inner = relock(&self.inner);
        loop {
            let batch: Vec<(u64, String)> = inner
                .events
                .iter()
                .filter(|(seq, _)| *seq >= from)
                .cloned()
                .collect();
            if !batch.is_empty() || inner.closed {
                return (batch, inner.closed);
            }
            let (guard, wait) = self
                .cond
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                return (Vec::new(), inner.closed);
            }
        }
    }
}

/// A [`TraceSink`] forwarding serialized telemetry events into a bus —
/// how a session's observer stream becomes `watch` output. Pair it with
/// [`FanoutSink`](mhca_telemetry::FanoutSink) to also keep an on-disk
/// `events.jsonl`.
pub struct BusSink {
    bus: std::sync::Arc<EventBus>,
}

impl BusSink {
    /// A sink publishing into `bus`.
    pub fn new(bus: std::sync::Arc<EventBus>) -> Self {
        BusSink { bus }
    }
}

impl TraceSink for BusSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(128);
        event.write_json(&mut line);
        self.bus.publish(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_are_sequenced_and_readable_from_any_offset() {
        let bus = EventBus::new(16);
        bus.publish("a".into());
        bus.publish("b".into());
        let (batch, closed) = bus.read_from(0, Duration::from_millis(1));
        assert_eq!(batch, vec![(0, "a".to_string()), (1, "b".to_string())]);
        assert!(!closed);
        let (tail, _) = bus.read_from(1, Duration::from_millis(1));
        assert_eq!(tail, vec![(1, "b".to_string())]);
    }

    #[test]
    fn ring_drops_oldest_but_keeps_sequence_numbers() {
        let bus = EventBus::new(2);
        assert_eq!(bus.dropped_events(), 0);
        for i in 0..5 {
            bus.publish(format!("e{i}"));
        }
        let (batch, _) = bus.read_from(0, Duration::from_millis(1));
        assert_eq!(batch, vec![(3, "e3".to_string()), (4, "e4".to_string())]);
        assert_eq!(bus.dropped_events(), 3, "evictions are counted");
    }

    #[test]
    fn poisoned_bus_keeps_serving() {
        // A thread panicking while holding the bus lock poisons it; the
        // bus must recover the guard (state is consistent at every
        // publish boundary) instead of cascading the panic into every
        // later reader and writer.
        let bus = Arc::new(EventBus::new(4));
        bus.publish("before".into());
        let poisoner = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                let _guard = bus.inner.lock().unwrap();
                panic!("poison the bus lock");
            })
        };
        assert!(poisoner.join().is_err());
        bus.publish("after".into());
        let (batch, _) = bus.read_from(0, Duration::from_millis(1));
        assert_eq!(
            batch,
            vec![(0, "before".to_string()), (1, "after".to_string())]
        );
        bus.close();
        let (_, closed) = bus.read_from(2, Duration::from_millis(1));
        assert!(closed);
    }

    #[test]
    fn close_wakes_empty_readers() {
        let bus = Arc::new(EventBus::new(4));
        let reader = {
            let bus = bus.clone();
            std::thread::spawn(move || bus.read_from(0, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        bus.close();
        let (batch, closed) = reader.join().unwrap();
        assert!(batch.is_empty());
        assert!(closed);
    }

    #[test]
    fn bus_sink_serializes_telemetry_events() {
        use mhca_telemetry::Telemetry;
        let bus = Arc::new(EventBus::new(8));
        let telemetry = Telemetry::from_sink(Box::new(BusSink::new(bus.clone())));
        telemetry
            .with_scope("s1/seed3")
            .counter("comm.decisions", 64);
        let (batch, _) = bus.read_from(0, Duration::from_millis(1));
        assert_eq!(batch.len(), 1);
        assert!(batch[0].1.contains("\"kind\":\"counter\""));
        assert!(batch[0].1.contains("\"scope\":\"s1/seed3\""));
    }
}
