//! Exact [`StateMap`] ↔ JSON codec — the checkpoint serialization layer.
//!
//! Checkpoints must restore **bit-identically**: the resumed run's
//! `RunResult` and artifacts are pinned byte-equal to an uninterrupted
//! run's, so the codec cannot round floats through decimal or squeeze
//! 64-bit counters into JSON's 2^53-exact number range. Encoding:
//!
//! * `u64` → decimal **string** (`"18446744073709551615"` — RNG state
//!   words use the full range);
//! * `f64` → hex bit-pattern string (`"0x3fe0000000000000"`), covering
//!   every value including `-0.0`, subnormals, and infinities;
//! * vectors → arrays of the same;
//! * each [`StateValue`] is wrapped in a one-key object naming its type
//!   (`{"u64": "42"}`), and the map itself is a JSON object in insertion
//!   order, so serialized checkpoints are deterministic byte-for-byte.

use crate::json::Json;
use mhca_bandit::{StateMap, StateValue};

/// Exact `f64` → JSON encoding (hex bit pattern string).
pub fn f64_to_json(x: f64) -> Json {
    Json::Str(format!("0x{:016x}", x.to_bits()))
}

/// Inverse of [`f64_to_json`].
pub fn f64_from_json(v: &Json) -> Result<f64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| "expected an f64 bit-pattern string".to_string())?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("f64 bit pattern must start with 0x, got {s:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("invalid f64 bit pattern {s:?}"))
}

/// Exact `u64` → JSON encoding (decimal string; JSON numbers are only
/// exact to 2^53).
pub fn u64_to_json(x: u64) -> Json {
    Json::Str(x.to_string())
}

/// Inverse of [`u64_to_json`].
pub fn u64_from_json(v: &Json) -> Result<u64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| "expected a u64 decimal string".to_string())?;
    s.parse::<u64>().map_err(|_| format!("invalid u64 {s:?}"))
}

fn value_to_json(value: &StateValue) -> Json {
    match value {
        StateValue::U64(x) => Json::obj(vec![("u64", u64_to_json(*x))]),
        StateValue::F64(x) => Json::obj(vec![("f64", f64_to_json(*x))]),
        StateValue::U64Vec(xs) => Json::obj(vec![(
            "u64vec",
            Json::Arr(xs.iter().map(|&x| u64_to_json(x)).collect()),
        )]),
        StateValue::F64Vec(xs) => Json::obj(vec![(
            "f64vec",
            Json::Arr(xs.iter().map(|&x| f64_to_json(x)).collect()),
        )]),
    }
}

fn value_from_json(key: &str, v: &Json) -> Result<StateValue, String> {
    let fail = |what: &str, e: String| format!("state key `{key}`: {what}: {e}");
    if let Some(x) = v.get("u64") {
        return u64_from_json(x)
            .map(StateValue::U64)
            .map_err(|e| fail("u64", e));
    }
    if let Some(x) = v.get("f64") {
        return f64_from_json(x)
            .map(StateValue::F64)
            .map_err(|e| fail("f64", e));
    }
    if let Some(xs) = v.get("u64vec").and_then(Json::as_arr) {
        return xs
            .iter()
            .map(u64_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(StateValue::U64Vec)
            .map_err(|e| fail("u64vec", e));
    }
    if let Some(xs) = v.get("f64vec").and_then(Json::as_arr) {
        return xs
            .iter()
            .map(f64_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(StateValue::F64Vec)
            .map_err(|e| fail("f64vec", e));
    }
    Err(format!(
        "state key `{key}`: unrecognized value encoding {}",
        v.to_string_compact()
    ))
}

/// Serializes a [`StateMap`] to a JSON object, preserving entry order.
pub fn state_map_to_json(map: &StateMap) -> Json {
    Json::Obj(
        map.iter()
            .map(|(k, v)| (k.to_string(), value_to_json(v)))
            .collect(),
    )
}

/// Inverse of [`state_map_to_json`].
pub fn state_map_from_json(v: &Json) -> Result<StateMap, String> {
    let Json::Obj(pairs) = v else {
        return Err("checkpoint state must be a JSON object".to_string());
    };
    let mut map = StateMap::new();
    for (key, value) in pairs {
        if map.get(key).is_some() {
            return Err(format!("duplicate state key `{key}` in checkpoint"));
        }
        map.put(key.clone(), value_from_json(key, value)?);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_maps_round_trip_bit_exactly() {
        let mut m = StateMap::new();
        m.put_u64("rng", u64::MAX);
        m.put_f64("neg_zero", -0.0);
        m.put_f64("subnormal", f64::MIN_POSITIVE / 8.0);
        m.put_f64("pi_ish", 0.1 + 0.2);
        m.put_u64_vec("counts", vec![0, 1, u64::MAX - 1]);
        m.put_f64_vec("means", vec![1.0 / 3.0, f64::INFINITY, -1e-300]);
        let text = state_map_to_json(&m).to_string_compact();
        let back = state_map_from_json(&crate::json::parse(&text).unwrap()).unwrap();
        // PartialEq on f64 would treat -0.0 == 0.0; compare bit patterns.
        for ((ka, va), (kb, vb)) in m.iter().zip(back.iter()) {
            assert_eq!(ka, kb);
            match (va, vb) {
                (StateValue::F64(a), StateValue::F64(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "key {ka}");
                }
                (StateValue::F64Vec(a), StateValue::F64Vec(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "key {ka}");
                    }
                }
                (a, b) => assert_eq!(a, b, "key {ka}"),
            }
        }
        assert_eq!(m.len(), back.len());
    }

    #[test]
    fn serialization_is_deterministic() {
        let mut m = StateMap::new();
        m.put_u64("b", 2);
        m.put_u64("a", 1);
        let t1 = state_map_to_json(&m).to_string_compact();
        let t2 = state_map_to_json(&m).to_string_compact();
        assert_eq!(t1, t2);
        // Insertion order survives (not alphabetized).
        assert!(t1.find("\"b\"").unwrap() < t1.find("\"a\"").unwrap());
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        for bad in [
            "[]",
            "{\"k\": 5}",
            "{\"k\": {\"u64\": \"nope\"}}",
            "{\"k\": {\"f64\": \"3fe0\"}}",
            "{\"k\": {\"f64\": \"0xzz\"}}",
            "{\"k\": {\"wat\": \"1\"}}",
            "{\"k\": {\"u64\": \"1\"}, \"k\": {\"u64\": \"2\"}}",
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(state_map_from_json(&v).is_err(), "accepted {bad}");
        }
    }
}
