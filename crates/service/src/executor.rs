//! The inversion-of-control seam between the service and the experiment
//! stack.
//!
//! The service supervises sessions but knows nothing about networks,
//! policies, or figure CSVs; the campaign crate knows all of that but
//! must not depend on the service's threading. The [`Executor`] trait
//! inverts the dependency: `mhca-campaign` implements it (this crate
//! sits *below* campaign in the workspace graph), and the supervisor
//! drives it one seed at a time. Control flows back through [`JobCtrl`]:
//! the executor calls [`JobCtrl::poll`] at every checkpoint-safe
//! boundary — for Algorithm 2 runs, every decision period — and obeys
//! the returned [`Directive`], handing over serialized state when a
//! checkpoint was requested. Running the seed on the worker thread's
//! own stack (instead of returning a stateful job object) lets the
//! executor keep the runner borrowing its network without any
//! self-referential ownership.

use crate::json::Json;
use mhca_telemetry::Telemetry;

/// What a scenario expands to, as reported by [`Executor::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// Scenario name (artifact directory name).
    pub name: String,
    /// Experiment kind tag (`"policy-run"`, `"fig6"`, …).
    pub kind: String,
    /// The seeds the session will run, in order.
    pub seeds: Vec<u64>,
    /// Whether the kind supports mid-seed checkpoints (Algorithm 2
    /// round loops). Other kinds checkpoint between seeds only: a
    /// mid-seed snapshot records no state and resume restarts the seed.
    pub steppable: bool,
}

/// One completed seed's output.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Rendered per-seed artifact (figure CSV bytes).
    pub artifact: Vec<u8>,
    /// Flat headline + observer metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
}

/// Progress of the in-flight seed, in slots (the experiment's own unit
/// when it has no slot notion: `done == total == 0` until completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobProgress {
    /// Slots simulated so far.
    pub slots_done: u64,
    /// Total slots in the run.
    pub slots_total: u64,
}

/// What the job should do next, as answered by [`JobCtrl::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Keep running.
    Continue,
    /// Serialize state into [`JobCtrl::save_checkpoint`], then keep
    /// running.
    Checkpoint,
    /// Serialize state, then return early (graceful shutdown).
    CheckpointAndStop,
    /// Return early without checkpointing (cancel).
    Stop,
}

/// The supervisor's side of the control channel, polled by the executor
/// at every checkpoint-safe boundary.
pub trait JobCtrl {
    /// Reports progress and picks up any pending control request. May
    /// block (a paused session parks here until resumed).
    fn poll(&mut self, progress: JobProgress) -> Directive;

    /// Hands over the serialized mid-seed state after a
    /// [`Directive::Checkpoint`] / [`Directive::CheckpointAndStop`].
    /// Kinds without mid-seed state pass [`Json::Null`].
    fn save_checkpoint(&mut self, state: Json);
}

/// Executes scenario seeds on behalf of the service. Implemented by
/// `mhca-campaign` over its scenario ingestion and the stepwise
/// `PolicyRunner`.
pub trait Executor: Send + Sync + 'static {
    /// Validates a scenario document and reports its job plan without
    /// running anything.
    fn validate(&self, scenario: &Json) -> Result<JobPlan, String>;

    /// Runs one seed to completion (or to an early stop), polling
    /// `ctrl` at every checkpoint-safe boundary and streaming telemetry
    /// into `telemetry`.
    ///
    /// `resume_from` carries the state handed to
    /// [`JobCtrl::save_checkpoint`] by a previous run of the same
    /// scenario/seed ([`Json::Null`] restarts from scratch). Returns
    /// `Ok(None)` when a directive stopped the run early.
    fn run_seed(
        &self,
        scenario: &Json,
        seed: u64,
        resume_from: Option<&Json>,
        telemetry: &Telemetry,
        ctrl: &mut dyn JobCtrl,
    ) -> Result<Option<JobOutput>, String>;
}
