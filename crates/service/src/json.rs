//! Hand-rolled JSON: a value model, an RFC 8259 emitter, and a small
//! recursive-descent parser.
//!
//! The workspace's vendored `serde` is marker-only (see
//! `vendor/README.md`), so campaign artifacts and manifests are emitted
//! and re-read by this module instead of a serde backend. The subset is
//! complete JSON — objects, arrays, strings (with escapes), numbers,
//! booleans, null — which is all a manifest round-trip needs. Object keys
//! keep insertion order so emitted documents are deterministic and
//! hash-stable.

use std::fmt::Write as _;

/// A JSON value. Objects preserve key order (deterministic emission).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers within `2^53` render
    /// without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from an ordered pair list.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty rendering with two-space indentation (manifests are meant
    /// to be human-inspected after an interrupted campaign).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Emits a number per RFC 8259. Non-finite values have no JSON encoding
/// and are emitted as `null`.
fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (surrounding whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "end of document"));
    }
    Ok(value)
}

fn err(offset: usize, expected: &str) -> ParseError {
    ParseError {
        offset,
        message: format!("expected {expected}"),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, lit: &str) -> bool {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(err(*pos, "a value")),
        Some(b'n') if eat(bytes, pos, "null") => Ok(Json::Null),
        Some(b't') if eat(bytes, pos, "true") => Ok(Json::Bool(true)),
        Some(b'f') if eat(bytes, pos, "false") => Ok(Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "':'"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "'\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "closing '\"'")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: require a \uXXXX low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos + 1, "low surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).ok_or_else(|| err(*pos, "scalar value"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| err(*pos, "scalar value"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(err(*pos, "an escape character")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "no raw control characters")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is safe
                // to do by char boundary search).
                let rest = &bytes[*pos..];
                let len = (1..=4)
                    .find(|&l| std::str::from_utf8(&rest[..l.min(rest.len())]).is_ok())
                    .unwrap_or(1);
                out.push_str(std::str::from_utf8(&rest[..len]).unwrap());
                *pos += len;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, ParseError> {
    if at + 4 > bytes.len() {
        return Err(err(at, "four hex digits"));
    }
    let s = std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| err(at, "four hex digits"))?;
    u32::from_str_radix(s, 16).map_err(|_| err(at, "four hex digits"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    if *pos == start {
        return Err(err(start, "a number"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .ok_or_else(|| err(start, "a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(42.0), "42"),
            (Json::Num(-1.5), "-1.5"),
            (Json::str("hi"), "\"hi\""),
        ] {
            assert_eq!(v.to_string_compact(), s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::str("fig6")),
            ("seeds", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("nested", Json::obj(vec![("ok", Json::Bool(false))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode é 中 control \u{1}";
        let v = Json::str(nasty);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
        // And standard escapes from foreign emitters parse too.
        assert_eq!(
            parse("\"a\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::str("aAé😀")
        );
    }

    #[test]
    fn numbers_parse_and_render() {
        assert_eq!(parse("3.25e2").unwrap().as_f64(), Some(325.0));
        assert_eq!(parse("-0").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(1e9).to_string_compact(), "1000000000");
        let v = Json::Num(0.1 + 0.2);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 3, \"b\": [\"x\"], \"c\": \"y\"}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("y"));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
