//! `mhca-service` — the resident experiment service.
//!
//! The campaign layer runs batch jobs to completion; this crate is the
//! long-lived counterpart behind `mhca-campaign serve`: a daemon that
//! owns experiment **sessions**, streams their metrics live, and can
//! checkpoint a job *mid-run* — serializing the bandit policy's learner
//! state, the round counter, and the RNG stream position — so a killed
//! daemon restarts and resumes inside the job with a byte-identical
//! final result.
//!
//! The pieces, bottom up:
//!
//! * [`json`] — the hand-rolled JSON value model, emitter, and parser
//!   (moved here from `mhca-campaign`, which now re-exports it). The
//!   wire protocol, the checkpoint codec, and the campaign manifests
//!   all share it.
//! * [`checkpoint`] — the exact [`StateMap`](mhca_bandit::StateMap) ↔
//!   JSON codec: `u64` as decimal strings (full 64-bit range — RNG
//!   state words do not fit JSON's 2^53-exact numbers), `f64` as hex
//!   bit patterns (`"0x3fe0000000000000"`), so restore is bit-exact.
//! * [`protocol`] — the line-delimited JSON request/response grammar
//!   (see `docs/SERVICE.md` for the full specification).
//! * [`bus`] — the per-session in-memory event bus `watch` streams
//!   from, plus [`BusSink`], the
//!   [`TraceSink`](mhca_telemetry::TraceSink) that feeds telemetry
//!   events into it.
//! * [`executor`] — the inversion-of-control seam to the experiment
//!   stack: the service calls [`Executor::run_seed`](executor::Executor)
//!   and the *executor* (implemented by `mhca-campaign`) polls back a
//!   [`JobCtrl`] at every decision-period boundary,
//!   where a checkpoint is legal. Layering the trait here (below the
//!   campaign crate) is what keeps the service free of experiment
//!   dependencies.
//! * [`session`] / [`supervisor`] — session records, their durable
//!   on-disk form, and the thread-per-session supervisor that owns
//!   them.
//! * [`server`] — the unix-socket / TCP listener: a small accept poll
//!   loop, one thread per connection, no async runtime (the workspace
//!   vendoring rule: no tokio).
//! * [`signals`] — SIGINT/SIGTERM → an [`AtomicBool`] flag, the only
//!   `unsafe` in the crate (one `extern "C"` handler registration).
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

#![deny(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod bus;
pub mod checkpoint;
pub mod executor;
pub mod json;
pub mod protocol;
pub mod server;
pub mod session;
pub mod signals;
pub mod supervisor;

pub use bus::{BusSink, EventBus};

/// Locks a mutex, recovering the guard when a panicking thread poisoned
/// it. Every critical section in this crate leaves its state consistent
/// before any operation that can panic, so the data behind a poisoned
/// lock is still valid — and one worker's panic (already downgraded to a
/// session failure by the supervisor's `catch_unwind`) must never
/// cascade into killing the whole daemon through an `unwrap` on the
/// next lock.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
pub use executor::{Directive, Executor, JobCtrl, JobOutput, JobPlan, JobProgress};
pub use protocol::Request;
pub use server::{serve, Endpoint};
pub use session::{SessionInfo, SessionStatus};
pub use supervisor::Supervisor;
