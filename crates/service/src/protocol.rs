//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests are `{"cmd": "<verb>", ...}` objects; responses are
//! `{"ok": true, ...}` or `{"ok": false, "error": "..."}` lines. `watch`
//! is the one streaming command: after the initial `ok` line the server
//! keeps writing `{"event": ..., "seq": n}` lines until the session
//! terminates or the client disconnects. The full grammar, with
//! examples, is specified in `docs/SERVICE.md`.
//!
//! Everything is line-delimited so `nc -U` plus a pipe is a complete
//! client; no framing, no binary, no async.

use crate::json::{parse, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Start a session running `scenario`, writing artifacts under
    /// `out_dir`. `name` overrides the auto-assigned session id.
    Submit {
        /// Scenario document (same shape `mhca-campaign run` ingests).
        scenario: Json,
        /// Artifact directory for the session.
        out_dir: String,
        /// Optional explicit session id.
        name: Option<String>,
    },
    /// Report one session (`Some`) or all sessions (`None`).
    Status {
        /// Session id, or `None` for the roster.
        session: Option<String>,
    },
    /// Stream a session's events starting at sequence `from`.
    Watch {
        /// Session id.
        session: String,
        /// First sequence number to deliver (0 = from the beginning of
        /// the retained window).
        from: u64,
    },
    /// Park the session at its next decision-period boundary.
    Pause {
        /// Session id.
        session: String,
    },
    /// Wake a paused session, or respawn one recovered from disk.
    Resume {
        /// Session id.
        session: String,
    },
    /// Checkpoint the session's in-flight seed to disk, without
    /// stopping it.
    Checkpoint {
        /// Session id.
        session: String,
    },
    /// Stop the session without checkpointing.
    Cancel {
        /// Session id.
        session: String,
    },
    /// Checkpoint every running session, persist, and exit the daemon.
    Shutdown,
}

fn req_str(v: &Json, key: &str, cmd: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("`{cmd}` requires a string `{key}` field"))
}

fn session_field(v: &Json, cmd: &str) -> Result<String, String> {
    req_str(v, "session", cmd)
}

/// Parses one request line. Errors are human-readable and become the
/// `error` field of an `{"ok": false}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("bad JSON at byte {}: {}", e.offset, e.message))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "request must be an object with a string `cmd` field".to_string())?;
    match cmd {
        "submit" => {
            let scenario = v
                .get("scenario")
                .cloned()
                .ok_or_else(|| "`submit` requires a `scenario` object".to_string())?;
            let out_dir = req_str(&v, "out_dir", "submit")?;
            let name = v.get("name").and_then(Json::as_str).map(str::to_string);
            Ok(Request::Submit {
                scenario,
                out_dir,
                name,
            })
        }
        "status" => Ok(Request::Status {
            session: v.get("session").and_then(Json::as_str).map(str::to_string),
        }),
        "watch" => Ok(Request::Watch {
            session: session_field(&v, "watch")?,
            from: v.get("from").and_then(Json::as_u64).unwrap_or(0),
        }),
        "pause" => Ok(Request::Pause {
            session: session_field(&v, "pause")?,
        }),
        "resume" => Ok(Request::Resume {
            session: session_field(&v, "resume")?,
        }),
        "checkpoint" => Ok(Request::Checkpoint {
            session: session_field(&v, "checkpoint")?,
        }),
        "cancel" => Ok(Request::Cancel {
            session: session_field(&v, "cancel")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown command {other:?} (expected submit | status | watch | pause | resume | \
             checkpoint | cancel | shutdown)"
        )),
    }
}

/// An `{"ok": true, ...}` response line (no trailing newline).
pub fn ok_line(fields: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs).to_string_compact()
}

/// An `{"ok": false, "error": ...}` response line (no trailing newline).
pub fn err_line(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = parse_request(
            r#"{"cmd":"submit","scenario":{"name":"s"},"out_dir":"/tmp/x","name":"sess1"}"#,
        )
        .unwrap();
        match req {
            Request::Submit {
                scenario,
                out_dir,
                name,
            } => {
                assert_eq!(scenario.get("name").and_then(Json::as_str), Some("s"));
                assert_eq!(out_dir, "/tmp/x");
                assert_eq!(name.as_deref(), Some("sess1"));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn watch_defaults_from_to_zero() {
        assert_eq!(
            parse_request(r#"{"cmd":"watch","session":"s1"}"#).unwrap(),
            Request::Watch {
                session: "s1".to_string(),
                from: 0
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"watch","session":"s1","from":17}"#).unwrap(),
            Request::Watch {
                session: "s1".to_string(),
                from: 17
            }
        );
    }

    #[test]
    fn control_verbs_parse() {
        for (line, want) in [
            (
                r#"{"cmd":"pause","session":"a"}"#,
                Request::Pause {
                    session: "a".into(),
                },
            ),
            (
                r#"{"cmd":"resume","session":"a"}"#,
                Request::Resume {
                    session: "a".into(),
                },
            ),
            (
                r#"{"cmd":"checkpoint","session":"a"}"#,
                Request::Checkpoint {
                    session: "a".into(),
                },
            ),
            (
                r#"{"cmd":"cancel","session":"a"}"#,
                Request::Cancel {
                    session: "a".into(),
                },
            ),
            (r#"{"cmd":"shutdown"}"#, Request::Shutdown),
            (r#"{"cmd":"status"}"#, Request::Status { session: None }),
        ] {
            assert_eq!(parse_request(line).unwrap(), want, "{line}");
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_context() {
        assert!(parse_request("not json").unwrap_err().contains("bad JSON"));
        assert!(parse_request("[1]").unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#)
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse_request(r#"{"cmd":"pause"}"#)
            .unwrap_err()
            .contains("session"));
        assert!(parse_request(r#"{"cmd":"submit","out_dir":"/x"}"#)
            .unwrap_err()
            .contains("scenario"));
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = ok_line(vec![("session", Json::Str("s1".into()))]);
        assert_eq!(ok, r#"{"ok":true,"session":"s1"}"#);
        let err = err_line("no such session");
        assert_eq!(err, r#"{"ok":false,"error":"no such session"}"#);
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }
}
