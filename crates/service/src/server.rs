//! The listener: unix socket or TCP, line-delimited JSON, no async.
//!
//! A deliberately small design. The accept loop runs nonblocking with a
//! 50 ms sleep so it can notice shutdown (the `shutdown` command, or
//! SIGINT/SIGTERM via [`signals`]); each accepted
//! connection gets its own thread running a read-line / write-line loop.
//! `watch` turns that loop into a stream: after the initial `ok` the
//! thread tails the session's [`EventBus`](crate::bus::EventBus) and
//! writes `{"seq":n,"event":{...}}` lines until the session terminates,
//! the daemon stops, or the client disconnects.
//!
//! On exit the server checkpoints and joins every session via
//! [`Supervisor::shutdown`] and removes the unix socket file, so
//! `serve → kill → serve` on the same path just works.

use crate::json::Json;
use crate::protocol::{err_line, ok_line, parse_request, Request};
use crate::session::SessionInfo;
use crate::signals;
use crate::supervisor::Supervisor;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop wakes to check for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// How long a `watch` tail blocks per bus read before re-checking for
/// daemon shutdown.
const WATCH_POLL: Duration = Duration::from_millis(500);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix domain socket at this path (removed on exit).
    Unix(PathBuf),
    /// A TCP bind address, e.g. `127.0.0.1:7770`.
    Tcp(String),
}

/// Runs the daemon until a `shutdown` command or SIGINT/SIGTERM, then
/// checkpoints every session and returns. Blocks the calling thread.
pub fn serve(supervisor: Arc<Supervisor>, endpoint: Endpoint) -> Result<(), String> {
    signals::install();
    let stop = Arc::new(AtomicBool::new(false));
    match &endpoint {
        Endpoint::Unix(path) => {
            // A previous daemon that died without cleanup leaves a stale
            // socket file; binding requires removing it first.
            if path.exists() {
                std::fs::remove_file(path)
                    .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
            }
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("set_nonblocking: {e}"))?;
            accept_loop(&supervisor, &stop, || listener.accept().map(|(s, _)| s));
            std::fs::remove_file(path).ok();
        }
        Endpoint::Tcp(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("set_nonblocking: {e}"))?;
            accept_loop(&supervisor, &stop, || listener.accept().map(|(s, _)| s));
        }
    }
    supervisor.shutdown();
    Ok(())
}

/// A connection the handler thread can read and write independently.
/// The read timeout keeps idle handler threads joinable: without it, a
/// client that never sends another line would pin its thread past
/// daemon shutdown.
trait Conn: Read + Write + Send {
    fn split(&self) -> std::io::Result<Box<dyn Read + Send>>;
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for UnixStream {
    fn split(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
}

impl Conn for TcpStream {
    fn split(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

fn accept_loop<S: Conn + 'static>(
    supervisor: &Arc<Supervisor>,
    stop: &Arc<AtomicBool>,
    mut accept: impl FnMut() -> std::io::Result<S>,
) {
    let mut handlers = Vec::new();
    while !stop.load(Ordering::Relaxed)
        && !signals::shutdown_requested()
        && !supervisor.shutting_down()
    {
        match accept() {
            Ok(stream) => {
                let supervisor = supervisor.clone();
                let stop = stop.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &supervisor, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection<S: Conn>(mut stream: S, supervisor: &Supervisor, stop: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(WATCH_POLL)).is_err() {
        return;
    }
    let mut reader = match stream.split() {
        Ok(r) => BufReader::new(r),
        Err(_) => return,
    };
    // Manual read loop (not `lines()`): a read timeout mid-line must
    // keep the partial line buffered, and the idle path must notice
    // daemon shutdown.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) if !line.ends_with('\n') => {
                // Timeout split the line; keep accumulating.
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request_line = std::mem::take(&mut line);
        let request_line = request_line.trim();
        if request_line.is_empty() {
            continue;
        }
        let response = match parse_request(request_line) {
            Err(message) => err_line(&message),
            Ok(Request::Watch { session, from }) => {
                // Streaming path: the initial ok, then the tail.
                match supervisor.bus(&session) {
                    Err(message) => err_line(&message),
                    Ok(bus) => {
                        // `dropped_events` counts ring evictions: a
                        // nonzero value (or a growth between header and
                        // closed line) tells the client that sequence
                        // gaps are backpressure, not corruption.
                        let header = ok_line(vec![
                            ("session", Json::Str(session)),
                            ("from", Json::Num(from as f64)),
                            ("dropped_events", Json::Num(bus.dropped_events() as f64)),
                        ]);
                        if write_line(&mut stream, &header).is_err() {
                            return;
                        }
                        let mut cursor = from;
                        loop {
                            let (batch, closed) = bus.read_from(cursor, WATCH_POLL);
                            for (seq, event) in &batch {
                                cursor = seq + 1;
                                // `event` is already one JSON object.
                                let framed = format!("{{\"seq\":{seq},\"event\":{event}}}");
                                if write_line(&mut stream, &framed).is_err() {
                                    return;
                                }
                            }
                            if closed && batch.is_empty() {
                                break;
                            }
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        ok_line(vec![
                            ("closed", Json::Bool(true)),
                            ("dropped_events", Json::Num(bus.dropped_events() as f64)),
                        ])
                    }
                }
            }
            Ok(request) => respond(request, supervisor, stop),
        };
        if write_line(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn respond(request: Request, supervisor: &Supervisor, stop: &Arc<AtomicBool>) -> String {
    let unit = |result: Result<(), String>| match result {
        Ok(()) => ok_line(vec![]),
        Err(message) => err_line(&message),
    };
    match request {
        Request::Submit {
            scenario,
            out_dir,
            name,
        } => match supervisor.submit(scenario, out_dir, name) {
            Ok(id) => ok_line(vec![("session", Json::Str(id))]),
            Err(message) => err_line(&message),
        },
        Request::Status { session } => match supervisor.status(session.as_deref()) {
            Ok(infos) => ok_line(vec![(
                "sessions",
                Json::Arr(infos.iter().map(SessionInfo::to_json).collect()),
            )]),
            Err(message) => err_line(&message),
        },
        Request::Pause { session } => unit(supervisor.pause(&session)),
        Request::Resume { session } => unit(supervisor.resume(&session)),
        Request::Checkpoint { session } => match supervisor.checkpoint(&session) {
            Ok(path) => ok_line(vec![("checkpoint", Json::Str(path))]),
            Err(message) => err_line(&message),
        },
        Request::Cancel { session } => unit(supervisor.cancel(&session)),
        Request::Shutdown => {
            stop.store(true, Ordering::Relaxed);
            ok_line(vec![("shutdown", Json::Bool(true))])
        }
        Request::Watch { .. } => unreachable!("watch handled by the streaming path"),
    }
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Directive, Executor, JobCtrl, JobOutput, JobPlan, JobProgress};
    use mhca_telemetry::Telemetry;

    /// Instant-finish executor: one poll, fixed artifact.
    struct TinyExec;

    impl Executor for TinyExec {
        fn validate(&self, scenario: &Json) -> Result<JobPlan, String> {
            let name = scenario
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario needs a name")?
                .to_string();
            Ok(JobPlan {
                name,
                kind: "tiny".to_string(),
                seeds: vec![1],
                steppable: false,
            })
        }

        fn run_seed(
            &self,
            _scenario: &Json,
            seed: u64,
            _resume_from: Option<&Json>,
            telemetry: &Telemetry,
            ctrl: &mut dyn JobCtrl,
        ) -> Result<Option<JobOutput>, String> {
            match ctrl.poll(JobProgress::default()) {
                Directive::Stop => return Ok(None),
                Directive::CheckpointAndStop => {
                    ctrl.save_checkpoint(Json::Null);
                    return Ok(None);
                }
                Directive::Checkpoint => ctrl.save_checkpoint(Json::Null),
                Directive::Continue => {}
            }
            telemetry.counter("tiny.done", 1);
            Ok(Some(JobOutput {
                artifact: format!("seed,{seed}\n").into_bytes(),
                metrics: vec![("done".to_string(), 1.0)],
            }))
        }
    }

    fn read_line(reader: &mut impl BufRead) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn unix_socket_end_to_end() {
        let base = std::env::temp_dir().join("mhca_server_unix_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let socket = base.join("daemon.sock");
        let supervisor = Arc::new(
            crate::supervisor::Supervisor::new(Arc::new(TinyExec), base.join("state")).unwrap(),
        );
        let server = {
            let supervisor = supervisor.clone();
            let socket = socket.clone();
            std::thread::spawn(move || serve(supervisor, Endpoint::Unix(socket)))
        };
        // Wait for the socket to come up.
        let mut conn = None;
        for _ in 0..100 {
            if let Ok(c) = UnixStream::connect(&socket) {
                conn = Some(c);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut conn = conn.expect("daemon did not come up");
        let mut reader = BufReader::new(conn.try_clone().unwrap());

        let out_dir = base.join("out");
        let submit = format!(
            "{{\"cmd\":\"submit\",\"scenario\":{{\"name\":\"t\"}},\"out_dir\":{}}}",
            Json::Str(out_dir.display().to_string()).to_string_compact()
        );
        write_line(&mut conn, &submit).unwrap();
        let resp = read_line(&mut reader);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"session\":\"s1\""), "{resp}");

        // Watch until the session closes; expect at least one event.
        write_line(&mut conn, r#"{"cmd":"watch","session":"s1"}"#).unwrap();
        let header = read_line(&mut reader);
        assert!(header.contains("\"ok\":true"), "{header}");
        let mut events = Vec::new();
        loop {
            let line = read_line(&mut reader);
            if line.contains("\"closed\":true") {
                break;
            }
            events.push(line);
        }
        assert!(
            events.iter().any(|l| l.contains("\"seed_done\"")),
            "{events:?}"
        );
        assert!(events.iter().any(|l| l.contains("tiny.done")), "{events:?}");

        write_line(&mut conn, r#"{"cmd":"status","session":"s1"}"#).unwrap();
        let status = read_line(&mut reader);
        assert!(status.contains("\"status\":\"done\""), "{status}");
        assert!(out_dir.join("seed1.csv").exists());

        write_line(&mut conn, "not json").unwrap();
        assert!(read_line(&mut reader).contains("\"ok\":false"));

        write_line(&mut conn, r#"{"cmd":"shutdown"}"#).unwrap();
        assert!(read_line(&mut reader).contains("\"shutdown\":true"));
        server.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file removed on shutdown");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn tcp_endpoint_answers_status() {
        let base = std::env::temp_dir().join("mhca_server_tcp_test");
        std::fs::remove_dir_all(&base).ok();
        let supervisor = Arc::new(
            crate::supervisor::Supervisor::new(Arc::new(TinyExec), base.join("state")).unwrap(),
        );
        // Port 0: the OS picks; rediscover via a bound probe first.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let supervisor = supervisor.clone();
            let addr = addr.clone();
            std::thread::spawn(move || serve(supervisor, Endpoint::Tcp(addr)))
        };
        let mut conn = None;
        for _ in 0..100 {
            if let Ok(c) = TcpStream::connect(&addr) {
                conn = Some(c);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut conn = conn.expect("daemon did not come up");
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        write_line(&mut conn, r#"{"cmd":"status"}"#).unwrap();
        let resp = read_line(&mut reader);
        assert!(
            resp.contains("\"ok\":true") && resp.contains("\"sessions\":[]"),
            "{resp}"
        );
        write_line(&mut conn, r#"{"cmd":"shutdown"}"#).unwrap();
        assert!(read_line(&mut reader).contains("\"shutdown\":true"));
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&base).ok();
    }
}
