//! Session records: the supervisor's unit of work and its durable form.
//!
//! A session is one submitted scenario — a seed list, an artifact
//! directory, and a cursor through the seeds. Its durable form is a
//! single `session.json` under the daemon's state directory, rewritten
//! atomically (temp file + rename) at every commit point: seed
//! completion, checkpoint, pause, terminal transition. A killed daemon
//! therefore restarts from the last commit point: completed seeds are
//! never re-run (their artifacts are already on disk), and the in-flight
//! seed resumes from its mid-seed checkpoint when one was taken.
//!
//! Metric values are stored as hex `f64` bit patterns (the
//! [`checkpoint`](crate::checkpoint) codec), so a resumed session's
//! final summary is byte-identical to an uninterrupted one's.

use crate::checkpoint::{f64_from_json, f64_to_json, u64_from_json, u64_to_json};
use crate::json::{parse, Json};
use std::path::Path;

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Submitted, worker not yet running a seed.
    Queued,
    /// Worker actively stepping a seed.
    Running,
    /// Parked at a decision-period boundary (explicit `pause`, or
    /// recovered from disk after a daemon restart and awaiting
    /// `resume`).
    Paused,
    /// All seeds completed.
    Done,
    /// Stopped by `cancel`; artifacts of completed seeds remain.
    Cancelled,
    /// The executor reported an error; see the record's `error`.
    Failed,
}

impl SessionStatus {
    /// Wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionStatus::Queued => "queued",
            SessionStatus::Running => "running",
            SessionStatus::Paused => "paused",
            SessionStatus::Done => "done",
            SessionStatus::Cancelled => "cancelled",
            SessionStatus::Failed => "failed",
        }
    }

    /// Inverse of [`as_str`](SessionStatus::as_str).
    pub fn parse(s: &str) -> Result<SessionStatus, String> {
        match s {
            "queued" => Ok(SessionStatus::Queued),
            "running" => Ok(SessionStatus::Running),
            "paused" => Ok(SessionStatus::Paused),
            "done" => Ok(SessionStatus::Done),
            "cancelled" => Ok(SessionStatus::Cancelled),
            "failed" => Ok(SessionStatus::Failed),
            other => Err(format!("unknown session status {other:?}")),
        }
    }

    /// Whether the session will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionStatus::Done | SessionStatus::Cancelled | SessionStatus::Failed
        )
    }
}

/// One completed seed: its headline + observer metrics in emission
/// order. The rendered artifact lives in the session's `out_dir`, not
/// here.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRecord {
    /// The seed.
    pub seed: u64,
    /// `(metric name, value)` rows.
    pub metrics: Vec<(String, f64)>,
}

/// A mid-seed checkpoint: which seed, and the executor's serialized
/// state ([`Json::Null`] for kinds without mid-seed state — resume
/// restarts that seed).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Seed the state belongs to.
    pub seed: u64,
    /// Executor state, as handed to
    /// [`JobCtrl::save_checkpoint`](crate::executor::JobCtrl::save_checkpoint).
    pub state: Json,
}

/// The durable session record (`session.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Session id (auto-assigned or client-chosen).
    pub id: String,
    /// The scenario document as submitted.
    pub scenario: Json,
    /// Artifact directory.
    pub out_dir: String,
    /// Experiment kind tag (from the executor's job plan).
    pub kind: String,
    /// All seeds, in run order.
    pub seeds: Vec<u64>,
    /// Seeds finished so far, in completion order.
    pub completed: Vec<SeedRecord>,
    /// Mid-seed checkpoint, if one is pending.
    pub checkpoint: Option<Checkpoint>,
    /// Current lifecycle state.
    pub status: SessionStatus,
    /// Failure message when `status == Failed`.
    pub error: Option<String>,
}

impl SessionRecord {
    /// Seeds not yet completed, in run order.
    pub fn remaining_seeds(&self) -> Vec<u64> {
        self.seeds
            .iter()
            .copied()
            .filter(|s| !self.completed.iter().any(|c| c.seed == *s))
            .collect()
    }

    /// Serializes to the `session.json` document.
    pub fn to_json(&self) -> Json {
        let completed = Json::Arr(
            self.completed
                .iter()
                .map(|rec| {
                    Json::obj(vec![
                        ("seed", u64_to_json(rec.seed)),
                        (
                            "metrics",
                            Json::Arr(
                                rec.metrics
                                    .iter()
                                    .map(|(name, value)| {
                                        Json::Arr(vec![
                                            Json::Str(name.clone()),
                                            f64_to_json(*value),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let checkpoint = match &self.checkpoint {
            Some(cp) => Json::obj(vec![
                ("seed", u64_to_json(cp.seed)),
                ("state", cp.state.clone()),
            ]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("format", Json::Str("mhca-session-v1".to_string())),
            ("id", Json::Str(self.id.clone())),
            ("scenario", self.scenario.clone()),
            ("out_dir", Json::Str(self.out_dir.clone())),
            ("kind", Json::Str(self.kind.clone())),
            (
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| u64_to_json(s)).collect()),
            ),
            ("completed", completed),
            ("checkpoint", checkpoint),
            ("status", Json::Str(self.status.as_str().to_string())),
            (
                "error",
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Inverse of [`to_json`](SessionRecord::to_json).
    pub fn from_json(v: &Json) -> Result<SessionRecord, String> {
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != "mhca-session-v1" {
            return Err(format!("unsupported session format {format:?}"));
        }
        let field_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("session record missing string `{key}`"))
        };
        let seeds = v
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or_else(|| "session record missing `seeds` array".to_string())?
            .iter()
            .map(u64_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let completed =
            v.get("completed")
                .and_then(Json::as_arr)
                .ok_or_else(|| "session record missing `completed` array".to_string())?
                .iter()
                .map(|rec| {
                    let seed = rec
                        .get("seed")
                        .ok_or_else(|| "completed entry missing `seed`".to_string())
                        .and_then(u64_from_json)?;
                    let metrics =
                        rec.get("metrics")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| "completed entry missing `metrics`".to_string())?
                            .iter()
                            .map(|pair| {
                                let row = pair.as_arr().filter(|row| row.len() == 2).ok_or_else(
                                    || "metric row must be [name, value]".to_string(),
                                )?;
                                let name = row[0]
                                    .as_str()
                                    .ok_or_else(|| "metric name must be a string".to_string())?;
                                Ok((name.to_string(), f64_from_json(&row[1])?))
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                    Ok(SeedRecord { seed, metrics })
                })
                .collect::<Result<Vec<_>, String>>()?;
        let checkpoint = match v.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(cp) => Some(Checkpoint {
                seed: cp
                    .get("seed")
                    .ok_or_else(|| "checkpoint missing `seed`".to_string())
                    .and_then(u64_from_json)?,
                state: cp
                    .get("state")
                    .cloned()
                    .ok_or_else(|| "checkpoint missing `state`".to_string())?,
            }),
        };
        Ok(SessionRecord {
            id: field_str("id")?,
            scenario: v
                .get("scenario")
                .cloned()
                .ok_or_else(|| "session record missing `scenario`".to_string())?,
            out_dir: field_str("out_dir")?,
            kind: field_str("kind")?,
            seeds,
            completed,
            checkpoint,
            status: SessionStatus::parse(&field_str("status")?)?,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Atomically rewrites `path` (temp file in the same directory +
    /// rename), so a kill mid-write never leaves a torn record.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a `session.json`.
    pub fn load(path: &Path) -> Result<SessionRecord, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let v = parse(&text).map_err(|e| {
            format!(
                "{}: bad JSON at byte {}: {}",
                path.display(),
                e.offset,
                e.message
            )
        })?;
        SessionRecord::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// A point-in-time status snapshot, as reported by `status`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// Session id.
    pub id: String,
    /// Lifecycle state.
    pub status: SessionStatus,
    /// Experiment kind tag.
    pub kind: String,
    /// Total seeds in the session.
    pub seeds_total: usize,
    /// Seeds completed.
    pub seeds_done: usize,
    /// Slots simulated in the in-flight seed (0 when idle).
    pub slots_done: u64,
    /// Total slots in the in-flight seed (0 when idle or unknown).
    pub slots_total: u64,
    /// Failure message when failed.
    pub error: Option<String>,
}

impl SessionInfo {
    /// Serializes for a `status` response. Counters here are plain JSON
    /// numbers (they are well under 2^53); only checkpoint state needs
    /// the exact codec.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("status", Json::Str(self.status.as_str().to_string())),
            ("kind", Json::Str(self.kind.clone())),
            ("seeds_total", Json::Num(self.seeds_total as f64)),
            ("seeds_done", Json::Num(self.seeds_done as f64)),
            ("slots_done", Json::Num(self.slots_done as f64)),
            ("slots_total", Json::Num(self.slots_total as f64)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionRecord {
        SessionRecord {
            id: "sess1".to_string(),
            scenario: Json::obj(vec![("name", Json::Str("quick".to_string()))]),
            out_dir: "/tmp/out".to_string(),
            kind: "policy-run".to_string(),
            seeds: vec![3, 4, 5],
            completed: vec![SeedRecord {
                seed: 3,
                metrics: vec![
                    ("avg_expected_kbps".to_string(), 123.456),
                    ("comm:transmissions".to_string(), -0.0),
                ],
            }],
            checkpoint: Some(Checkpoint {
                seed: 4,
                state: Json::obj(vec![("slot", Json::Str("0x0000000000000280".to_string()))]),
            }),
            status: SessionStatus::Paused,
            error: None,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample();
        let back = SessionRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(rec.id, back.id);
        assert_eq!(rec.seeds, back.seeds);
        assert_eq!(rec.status, back.status);
        assert_eq!(rec.checkpoint, back.checkpoint);
        assert_eq!(back.completed.len(), 1);
        assert_eq!(back.completed[0].metrics[0].0, "avg_expected_kbps");
        assert_eq!(
            back.completed[0].metrics[1].1.to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(back.remaining_seeds(), vec![4, 5]);
    }

    #[test]
    fn record_round_trips_through_disk_atomically() {
        let dir = std::env::temp_dir().join("mhca_session_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.json");
        let rec = sample();
        rec.save(&path).unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        let back = SessionRecord::load(&path).unwrap();
        assert_eq!(rec, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_formats_and_statuses_are_rejected() {
        let mut rec = sample().to_json();
        if let Json::Obj(pairs) = &mut rec {
            pairs[0].1 = Json::Str("mhca-session-v9".to_string());
        }
        assert!(SessionRecord::from_json(&rec).is_err());
        assert!(SessionStatus::parse("zombie").is_err());
    }

    #[test]
    fn terminal_states() {
        assert!(SessionStatus::Done.is_terminal());
        assert!(SessionStatus::Cancelled.is_terminal());
        assert!(SessionStatus::Failed.is_terminal());
        assert!(!SessionStatus::Running.is_terminal());
        assert!(!SessionStatus::Paused.is_terminal());
        assert!(!SessionStatus::Queued.is_terminal());
    }
}
