//! SIGINT/SIGTERM → an atomic flag, with no `libc` dependency.
//!
//! The workspace vendors everything (no `cargo add`), so instead of the
//! `libc` or `signal-hook` crates this module declares the one POSIX
//! symbol it needs — `signal(2)` — directly. The handler only stores a
//! relaxed atomic, which is async-signal-safe; everything else (flushing
//! manifests, checkpointing sessions) happens on normal threads that
//! observe the flag at their next poll point.
//!
//! This is the only `unsafe` in the crate (the crate is otherwise
//! `#![deny(unsafe_code)]`).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGINT or SIGTERM arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    use super::{Ordering, SHUTDOWN};

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub(super) fn install(signum: i32) {
        unsafe {
            signal(signum, on_signal as *const () as usize);
        }
    }
}

/// Registers the SIGINT/SIGTERM handler (idempotent) and returns the
/// flag it sets. Poll the flag with [`shutdown_requested`] — or directly
/// — at checkpoint-safe boundaries.
pub fn install() -> &'static AtomicBool {
    ffi::install(SIGINT);
    ffi::install(SIGTERM);
    &SHUTDOWN
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Test-only reset: the flag is process-global, and signal tests must
/// not leak a `true` into unrelated tests in the same binary.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        reset_for_tests();
        let flag = install();
        let again = install();
        assert!(std::ptr::eq(flag, again));
        assert!(!shutdown_requested());
    }
}
