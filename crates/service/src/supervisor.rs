//! The supervisor: owns sessions, their worker threads, and their
//! durable records.
//!
//! One worker thread per session (no pool — sessions are few and
//! long-lived; seeds within a session run sequentially so mid-seed
//! checkpoints have a single cursor). The worker drives
//! [`Executor::run_seed`] and control flows back through
//! `WorkerCtrl`'s [`JobCtrl`] implementation, which the executor polls
//! at every decision-period boundary:
//!
//! * **pause** marks the session paused and returns a
//!   [`Directive::Checkpoint`] so the pause point is durable, then parks
//!   the worker inside `poll` until resume/cancel/shutdown;
//! * **checkpoint** hands a reply channel to the worker, which answers
//!   after `session.json` hits disk;
//! * **shutdown** (command, SIGINT/SIGTERM, or a dropped control
//!   channel) returns [`Directive::CheckpointAndStop`]: the executor
//!   serializes its state and unwinds, leaving the session `paused` and
//!   resumable — even across a daemon restart.
//!
//! Every commit point rewrites the session record atomically, so a
//! `kill -9` between commits only loses work since the last checkpoint;
//! determinism of the experiment stack makes the re-run of that tail
//! byte-identical.

use crate::bus::{BusSink, EventBus};
use crate::executor::{Directive, Executor, JobCtrl, JobProgress};
use crate::json::Json;
use crate::relock;
use crate::session::{Checkpoint, SeedRecord, SessionInfo, SessionRecord, SessionStatus};
use mhca_telemetry::{FanoutSink, JsonlSink, Telemetry, TraceSink};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default events retained per session for `watch` backfill; override
/// with [`Supervisor::with_bus_capacity`] (the `serve --bus-capacity`
/// flag).
pub const DEFAULT_BUS_CAPACITY: usize = 4096;

/// How long a `checkpoint` command waits for the worker to reach a
/// checkpoint-safe boundary. Non-steppable kinds only poll between
/// seeds, so a long seed can exhaust this; the error says so.
const CHECKPOINT_REPLY_TIMEOUT: Duration = Duration::from_secs(60);

enum Ctrl {
    Pause,
    Resume,
    Checkpoint(SyncSender<Result<String, String>>),
    Cancel,
    Shutdown,
}

enum StopReason {
    Cancelled,
    Shutdown,
}

struct SessionEntry {
    id: String,
    /// `state_dir/<id>.json`.
    path: PathBuf,
    bus: Arc<EventBus>,
    record: Mutex<SessionRecord>,
    progress: Mutex<JobProgress>,
    ctrl: Mutex<Option<Sender<Ctrl>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl SessionEntry {
    fn persist(&self) {
        let rec = relock(&self.record);
        // A failed write surfaces at the next load; the in-memory record
        // stays authoritative for this daemon's lifetime.
        let _ = rec.save(&self.path);
    }

    fn publish_event(&self, kind: &str, extra: Vec<(&str, Json)>) {
        let mut fields = vec![("event", Json::Str(kind.to_string()))];
        fields.extend(extra);
        self.bus.publish(Json::obj(fields).to_string_compact());
    }

    fn set_status(&self, status: SessionStatus) {
        relock(&self.record).status = status;
    }

    fn info(&self) -> SessionInfo {
        let rec = relock(&self.record);
        let progress = *relock(&self.progress);
        SessionInfo {
            id: rec.id.clone(),
            status: rec.status,
            kind: rec.kind.clone(),
            seeds_total: rec.seeds.len(),
            seeds_done: rec.completed.len(),
            slots_done: progress.slots_done,
            slots_total: progress.slots_total,
            error: rec.error.clone(),
        }
    }
}

/// The [`JobCtrl`] handed to the executor; lives on the worker thread's
/// stack for the duration of one seed.
struct WorkerCtrl<'a> {
    entry: &'a SessionEntry,
    rx: &'a Receiver<Ctrl>,
    shutdown: &'a AtomicBool,
    seed: u64,
    paused: bool,
    stop: Option<StopReason>,
    pending_reply: Option<SyncSender<Result<String, String>>>,
}

impl WorkerCtrl<'_> {
    /// Handles one control message; `Some(directive)` overrides the
    /// default `Continue`.
    fn handle(&mut self, msg: Ctrl) -> Option<Directive> {
        match msg {
            Ctrl::Pause => {
                if self.paused {
                    return None;
                }
                self.paused = true;
                self.entry.set_status(SessionStatus::Paused);
                self.entry.persist();
                self.entry.publish_event("paused", vec![]);
                // Make the pause point durable before parking.
                Some(Directive::Checkpoint)
            }
            Ctrl::Resume => {
                if !self.paused {
                    return None;
                }
                self.paused = false;
                self.entry.set_status(SessionStatus::Running);
                self.entry.persist();
                self.entry.publish_event("resumed", vec![]);
                Some(Directive::Continue)
            }
            Ctrl::Checkpoint(reply) => {
                if self.paused {
                    // The pause already persisted a checkpoint and the
                    // worker is parked; nothing new to serialize.
                    let _ = reply.send(Ok("paused; pause checkpoint retained".to_string()));
                    return None;
                }
                self.pending_reply = Some(reply);
                Some(Directive::Checkpoint)
            }
            Ctrl::Cancel => {
                self.stop = Some(StopReason::Cancelled);
                Some(Directive::Stop)
            }
            Ctrl::Shutdown => {
                self.stop = Some(StopReason::Shutdown);
                Some(Directive::CheckpointAndStop)
            }
        }
    }
}

impl JobCtrl for WorkerCtrl<'_> {
    fn poll(&mut self, progress: JobProgress) -> Directive {
        *relock(&self.entry.progress) = progress;
        if self.shutdown.load(Ordering::Relaxed) {
            self.stop = Some(StopReason::Shutdown);
            return Directive::CheckpointAndStop;
        }
        let mut directive = Directive::Continue;
        loop {
            match self.rx.try_recv() {
                Ok(msg) => {
                    if let Some(d) = self.handle(msg) {
                        match d {
                            Directive::Stop | Directive::CheckpointAndStop => return d,
                            d => directive = d,
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.stop = Some(StopReason::Shutdown);
                    return Directive::CheckpointAndStop;
                }
            }
        }
        // Park while paused. (The pause itself returned `Checkpoint`
        // above; the park begins at the *next* poll, so the persisted
        // checkpoint trails the parked position by at most one period —
        // harmless, since resuming from it deterministically replays
        // that period.)
        while self.paused && directive == Directive::Continue {
            match self.rx.recv() {
                Ok(msg) => {
                    if let Some(d) = self.handle(msg) {
                        match d {
                            Directive::Stop | Directive::CheckpointAndStop => return d,
                            d => directive = d,
                        }
                    }
                }
                Err(_) => {
                    self.stop = Some(StopReason::Shutdown);
                    return Directive::CheckpointAndStop;
                }
            }
        }
        directive
    }

    fn save_checkpoint(&mut self, state: Json) {
        {
            let mut rec = relock(&self.entry.record);
            rec.checkpoint = Some(Checkpoint {
                seed: self.seed,
                state,
            });
        }
        self.entry.persist();
        self.entry
            .publish_event("checkpointed", vec![("seed", Json::Num(self.seed as f64))]);
        if let Some(reply) = self.pending_reply.take() {
            let _ = reply.send(Ok(self.entry.path.display().to_string()));
        }
    }
}

/// Owns every session: submit spawns a worker, control commands route to
/// it, and the whole roster persists under one state directory.
pub struct Supervisor {
    executor: Arc<dyn Executor>,
    state_dir: PathBuf,
    bus_capacity: usize,
    sessions: Mutex<Vec<Arc<SessionEntry>>>,
    shutdown_flag: Arc<AtomicBool>,
}

impl Supervisor {
    /// Opens (or creates) a state directory and recovers every session
    /// record in it. Sessions that were `running` when the previous
    /// daemon died come back as `paused` — `resume` restarts them from
    /// their last checkpoint.
    pub fn new(executor: Arc<dyn Executor>, state_dir: PathBuf) -> Result<Supervisor, String> {
        Supervisor::with_bus_capacity(executor, state_dir, DEFAULT_BUS_CAPACITY)
    }

    /// As [`new`](Supervisor::new), with each session's event-bus ring
    /// retaining at most `bus_capacity` events (a slow `watch` client
    /// then observes a sequence gap plus the `dropped_events` counter
    /// instead of the daemon buffering without bound).
    pub fn with_bus_capacity(
        executor: Arc<dyn Executor>,
        state_dir: PathBuf,
        bus_capacity: usize,
    ) -> Result<Supervisor, String> {
        std::fs::create_dir_all(&state_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
        let mut sessions = Vec::new();
        let mut names: Vec<PathBuf> = std::fs::read_dir(&state_dir)
            .map_err(|e| format!("cannot read state dir {}: {e}", state_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        names.sort();
        for path in names {
            let mut record = SessionRecord::load(&path)?;
            if matches!(
                record.status,
                SessionStatus::Running | SessionStatus::Queued
            ) {
                record.status = SessionStatus::Paused;
            }
            let entry = Arc::new(SessionEntry {
                id: record.id.clone(),
                path,
                bus: Arc::new(EventBus::new(bus_capacity)),
                record: Mutex::new(record),
                progress: Mutex::new(JobProgress::default()),
                ctrl: Mutex::new(None),
                worker: Mutex::new(None),
            });
            entry.persist();
            sessions.push(entry);
        }
        Ok(Supervisor {
            executor,
            state_dir,
            bus_capacity,
            sessions: Mutex::new(sessions),
            shutdown_flag: Arc::new(AtomicBool::new(false)),
        })
    }

    fn find(&self, id: &str) -> Result<Arc<SessionEntry>, String> {
        relock(&self.sessions)
            .iter()
            .find(|s| s.id == id)
            .cloned()
            .ok_or_else(|| format!("no such session {id:?}"))
    }

    /// Validates and starts a session; returns its id.
    pub fn submit(
        &self,
        scenario: Json,
        out_dir: String,
        name: Option<String>,
    ) -> Result<String, String> {
        let plan = self.executor.validate(&scenario)?;
        let mut sessions = relock(&self.sessions);
        let id = match name {
            Some(name) => {
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(format!(
                        "session name {name:?} must be non-empty [alphanumeric-_]"
                    ));
                }
                if sessions.iter().any(|s| s.id == name) {
                    return Err(format!("session {name:?} already exists"));
                }
                name
            }
            None => {
                let mut n = sessions.len() + 1;
                while sessions.iter().any(|s| s.id == format!("s{n}")) {
                    n += 1;
                }
                format!("s{n}")
            }
        };
        std::fs::create_dir_all(&out_dir)
            .map_err(|e| format!("cannot create out dir {out_dir}: {e}"))?;
        let record = SessionRecord {
            id: id.clone(),
            scenario,
            out_dir,
            kind: plan.kind,
            seeds: plan.seeds,
            completed: Vec::new(),
            checkpoint: None,
            status: SessionStatus::Queued,
            error: None,
        };
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            path: self.state_dir.join(format!("{id}.json")),
            bus: Arc::new(EventBus::new(self.bus_capacity)),
            record: Mutex::new(record),
            progress: Mutex::new(JobProgress::default()),
            ctrl: Mutex::new(None),
            worker: Mutex::new(None),
        });
        entry.persist();
        entry.publish_event("submitted", vec![("session", Json::Str(id.clone()))]);
        self.spawn_worker(entry.clone());
        sessions.push(entry);
        Ok(id)
    }

    fn spawn_worker(&self, entry: Arc<SessionEntry>) {
        let (tx, rx) = mpsc::channel();
        // Join any finished previous worker before replacing it.
        if let Some(old) = relock(&entry.worker).take() {
            let _ = old.join();
        }
        *relock(&entry.ctrl) = Some(tx);
        let executor = self.executor.clone();
        let shutdown = self.shutdown_flag.clone();
        let entry2 = entry.clone();
        let handle = std::thread::spawn(move || worker_loop(executor, entry2, rx, shutdown));
        *relock(&entry.worker) = Some(handle);
    }

    /// Status snapshot of one session or the whole roster.
    pub fn status(&self, id: Option<&str>) -> Result<Vec<SessionInfo>, String> {
        match id {
            Some(id) => Ok(vec![self.find(id)?.info()]),
            None => Ok(relock(&self.sessions).iter().map(|s| s.info()).collect()),
        }
    }

    /// The session's event bus, for `watch` streaming.
    pub fn bus(&self, id: &str) -> Result<Arc<EventBus>, String> {
        Ok(self.find(id)?.bus.clone())
    }

    fn send_ctrl(&self, id: &str, msg: Ctrl) -> Result<(), String> {
        let entry = self.find(id)?;
        let guard = relock(&entry.ctrl);
        let tx = guard
            .as_ref()
            .ok_or_else(|| format!("session {id:?} has no running worker"))?;
        tx.send(msg)
            .map_err(|_| format!("session {id:?} is not running"))
    }

    /// Parks the session at its next decision-period boundary (persisting
    /// a checkpoint of the pause point).
    pub fn pause(&self, id: &str) -> Result<(), String> {
        self.send_ctrl(id, Ctrl::Pause)
    }

    /// Wakes a paused session — either one parked in its worker, or one
    /// recovered from disk (a new worker is spawned, resuming the
    /// in-flight seed from its checkpoint).
    pub fn resume(&self, id: &str) -> Result<(), String> {
        let entry = self.find(id)?;
        if self.send_ctrl(id, Ctrl::Resume).is_ok() {
            return Ok(());
        }
        let status = relock(&entry.record).status;
        if status.is_terminal() {
            return Err(format!("session {id:?} is {}", status.as_str()));
        }
        self.spawn_worker(entry);
        Ok(())
    }

    /// Checkpoints the in-flight seed; resolves once `session.json` is
    /// on disk, returning its path.
    pub fn checkpoint(&self, id: &str) -> Result<String, String> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.send_ctrl(id, Ctrl::Checkpoint(tx))?;
        match rx.recv_timeout(CHECKPOINT_REPLY_TIMEOUT) {
            Ok(result) => result,
            Err(_) => Err(format!(
                "checkpoint of session {id:?} timed out (job not at a checkpoint-safe boundary \
                 within {}s)",
                CHECKPOINT_REPLY_TIMEOUT.as_secs()
            )),
        }
    }

    /// Stops the session without checkpointing. Completed seeds keep
    /// their artifacts.
    pub fn cancel(&self, id: &str) -> Result<(), String> {
        let entry = self.find(id)?;
        if self.send_ctrl(id, Ctrl::Cancel).is_ok() {
            return Ok(());
        }
        // No worker (recovered session): mark terminal directly.
        let status = relock(&entry.record).status;
        if status.is_terminal() {
            return Err(format!("session {id:?} is already {}", status.as_str()));
        }
        entry.set_status(SessionStatus::Cancelled);
        entry.persist();
        entry.publish_event("cancelled", vec![]);
        entry.bus.close();
        Ok(())
    }

    /// Checkpoint-and-stop every running session and join all workers.
    /// After this returns, every non-terminal session is `paused` on
    /// disk and resumable by the next daemon.
    pub fn shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
        let sessions: Vec<Arc<SessionEntry>> = relock(&self.sessions).clone();
        for entry in &sessions {
            // Wake parked workers; send failures mean the worker already
            // exited.
            if let Some(tx) = relock(&entry.ctrl).as_ref() {
                let _ = tx.send(Ctrl::Shutdown);
            }
        }
        for entry in &sessions {
            if let Some(handle) = relock(&entry.worker).take() {
                let _ = handle.join();
            }
        }
    }

    /// Whether [`shutdown`](Supervisor::shutdown) has begun (set eagerly
    /// by the signal path so pollers observe it before workers join).
    pub fn shutting_down(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }
}

fn worker_loop(
    executor: Arc<dyn Executor>,
    entry: Arc<SessionEntry>,
    rx: Receiver<Ctrl>,
    shutdown: Arc<AtomicBool>,
) {
    let (scenario, out_dir, remaining) = {
        let rec = relock(&entry.record);
        (
            rec.scenario.clone(),
            rec.out_dir.clone(),
            rec.remaining_seeds(),
        )
    };
    entry.set_status(SessionStatus::Running);
    entry.persist();
    entry.publish_event("running", vec![]);
    let out_dir = PathBuf::from(out_dir);

    for seed in remaining {
        let resume_from = {
            let rec = relock(&entry.record);
            rec.checkpoint
                .clone()
                .filter(|cp| cp.seed == seed)
                .map(|cp| cp.state)
        };
        let mut sinks: Vec<Box<dyn TraceSink>> = vec![Box::new(BusSink::new(entry.bus.clone()))];
        if let Ok(jsonl) = JsonlSink::append(&out_dir.join("events.jsonl")) {
            sinks.push(Box::new(jsonl));
        }
        let telemetry = Telemetry::from_sink(Box::new(FanoutSink::new(sinks)))
            .with_scope(&format!("{}/seed{seed}", entry.id));
        entry.publish_event(
            "seed_start",
            vec![
                ("seed", Json::Num(seed as f64)),
                ("resumed", Json::Bool(resume_from.is_some())),
            ],
        );
        let mut ctrl = WorkerCtrl {
            entry: &entry,
            rx: &rx,
            shutdown: &shutdown,
            seed,
            paused: false,
            stop: None,
            pending_reply: None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            executor.run_seed(&scenario, seed, resume_from.as_ref(), &telemetry, &mut ctrl)
        }))
        .unwrap_or_else(|_| Err(format!("executor panicked on seed {seed}")));
        telemetry.flush();

        match outcome {
            Ok(Some(output)) => {
                let artifact_path = out_dir.join(format!("seed{seed}.csv"));
                if let Err(e) = std::fs::write(&artifact_path, &output.artifact) {
                    fail(
                        &entry,
                        format!("cannot write {}: {e}", artifact_path.display()),
                    );
                    return;
                }
                {
                    let mut rec = relock(&entry.record);
                    rec.completed.push(SeedRecord {
                        seed,
                        metrics: output.metrics,
                    });
                    rec.checkpoint = None;
                }
                *relock(&entry.progress) = JobProgress::default();
                entry.persist();
                entry.publish_event("seed_done", vec![("seed", Json::Num(seed as f64))]);
            }
            Ok(None) => {
                match ctrl.stop {
                    Some(StopReason::Cancelled) => {
                        entry.set_status(SessionStatus::Cancelled);
                        entry.persist();
                        entry.publish_event("cancelled", vec![]);
                    }
                    // Shutdown (or a vanished control channel): the
                    // checkpoint is already persisted; stay resumable.
                    _ => {
                        entry.set_status(SessionStatus::Paused);
                        entry.persist();
                        entry.publish_event("stopped", vec![]);
                    }
                }
                entry.bus.close();
                return;
            }
            Err(message) => {
                fail(&entry, message);
                return;
            }
        }
    }

    entry.set_status(SessionStatus::Done);
    entry.persist();
    entry.publish_event("done", vec![]);
    entry.bus.close();
}

fn fail(entry: &SessionEntry, message: String) {
    {
        let mut rec = relock(&entry.record);
        rec.status = SessionStatus::Failed;
        rec.error = Some(message.clone());
    }
    entry.persist();
    entry.publish_event("failed", vec![("error", Json::Str(message))]);
    entry.bus.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{u64_from_json, u64_to_json};
    use crate::executor::JobOutput;
    use std::time::Instant;

    /// Deterministic steppable executor: a keyed LCG stepped `steps`
    /// times, checkpointable at every step.
    struct MockExec {
        steps: u64,
        step_sleep: Duration,
    }

    impl MockExec {
        fn state(i: u64, acc: u64) -> Json {
            Json::obj(vec![("i", u64_to_json(i)), ("acc", u64_to_json(acc))])
        }
    }

    impl Executor for MockExec {
        fn validate(&self, scenario: &Json) -> Result<crate::executor::JobPlan, String> {
            let name = scenario
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario needs a name")?
                .to_string();
            let seeds = scenario
                .get("seeds")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_else(|| vec![1]);
            Ok(crate::executor::JobPlan {
                name,
                kind: "mock".to_string(),
                seeds,
                steppable: true,
            })
        }

        fn run_seed(
            &self,
            _scenario: &Json,
            seed: u64,
            resume_from: Option<&Json>,
            telemetry: &Telemetry,
            ctrl: &mut dyn JobCtrl,
        ) -> Result<Option<JobOutput>, String> {
            let (mut i, mut acc) = match resume_from {
                Some(v) if !matches!(v, Json::Null) => (
                    u64_from_json(v.get("i").ok_or("checkpoint missing i")?)?,
                    u64_from_json(v.get("acc").ok_or("checkpoint missing acc")?)?,
                ),
                _ => (0, seed),
            };
            loop {
                match ctrl.poll(JobProgress {
                    slots_done: i,
                    slots_total: self.steps,
                }) {
                    Directive::Continue => {}
                    Directive::Checkpoint => ctrl.save_checkpoint(Self::state(i, acc)),
                    Directive::CheckpointAndStop => {
                        ctrl.save_checkpoint(Self::state(i, acc));
                        return Ok(None);
                    }
                    Directive::Stop => return Ok(None),
                }
                if i == self.steps {
                    break;
                }
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(seed ^ i);
                i += 1;
                if i % 16 == 0 {
                    telemetry.counter("mock.step", i);
                }
                if !self.step_sleep.is_zero() {
                    std::thread::sleep(self.step_sleep);
                }
            }
            Ok(Some(JobOutput {
                artifact: format!("seed,{seed}\nacc,{acc}\n").into_bytes(),
                metrics: vec![("acc".to_string(), acc as f64)],
            }))
        }
    }

    fn temp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir().join(format!("mhca_supervisor_{tag}"));
        std::fs::remove_dir_all(&base).ok();
        (base.join("state"), base.join("out"))
    }

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    fn scenario(seeds: &[u64]) -> Json {
        Json::obj(vec![
            ("name", Json::Str("mock".to_string())),
            (
                "seeds",
                Json::Arr(seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
        ])
    }

    fn wait_done(sup: &Supervisor, id: &str) {
        assert!(
            wait_until(Duration::from_secs(30), || {
                sup.status(Some(id)).unwrap()[0].status == SessionStatus::Done
            }),
            "session {id} did not finish: {:?}",
            sup.status(Some(id)).unwrap()
        );
    }

    #[test]
    fn session_runs_to_done_and_streams_events() {
        let (state, out) = temp_dirs("done");
        let sup = Supervisor::new(
            Arc::new(MockExec {
                steps: 64,
                step_sleep: Duration::ZERO,
            }),
            state,
        )
        .unwrap();
        let id = sup
            .submit(scenario(&[7, 8]), out.display().to_string(), None)
            .unwrap();
        wait_done(&sup, &id);
        let info = &sup.status(Some(&id)).unwrap()[0];
        assert_eq!(info.seeds_done, 2);
        assert!(out.join("seed7.csv").exists() && out.join("seed8.csv").exists());
        let (events, closed) = sup.bus(&id).unwrap().read_from(0, Duration::ZERO);
        assert!(closed);
        let text: Vec<&str> = events.iter().map(|(_, l)| l.as_str()).collect();
        assert!(text.iter().any(|l| l.contains("\"seed_done\"")));
        assert!(text.iter().any(|l| l.contains("mock.step")));
        assert!(text.last().unwrap().contains("\"done\""));
        sup.shutdown();
    }

    #[test]
    fn shutdown_restart_resume_is_byte_identical() {
        let (state, out) = temp_dirs("resume");
        let make_exec = || {
            Arc::new(MockExec {
                steps: 5000,
                step_sleep: Duration::from_micros(100),
            })
        };
        // Uninterrupted baseline in its own universe.
        let (state_b, out_b) = temp_dirs("resume_baseline");
        let baseline = Supervisor::new(
            Arc::new(MockExec {
                steps: 5000,
                step_sleep: Duration::ZERO,
            }),
            state_b,
        )
        .unwrap();
        let bid = baseline
            .submit(scenario(&[42]), out_b.display().to_string(), None)
            .unwrap();
        wait_done(&baseline, &bid);
        baseline.shutdown();
        let expected = std::fs::read(out_b.join("seed42.csv")).unwrap();

        // Interrupted run: shutdown mid-seed, new supervisor, resume.
        let sup = Supervisor::new(make_exec(), state.clone()).unwrap();
        let id = sup
            .submit(scenario(&[42]), out.display().to_string(), None)
            .unwrap();
        assert!(wait_until(Duration::from_secs(10), || {
            sup.status(Some(&id)).unwrap()[0].slots_done > 50
        }));
        sup.shutdown();
        let mid = sup.status(Some(&id)).unwrap()[0].clone();
        assert_eq!(mid.status, SessionStatus::Paused, "stopped mid-seed");
        assert!(
            mid.slots_done < 5000,
            "job finished before shutdown; raise steps"
        );

        let sup2 = Supervisor::new(make_exec(), state).unwrap();
        let recovered = &sup2.status(Some(&id)).unwrap()[0];
        assert_eq!(recovered.status, SessionStatus::Paused);
        sup2.resume(&id).unwrap();
        wait_done(&sup2, &id);
        sup2.shutdown();

        assert_eq!(std::fs::read(out.join("seed42.csv")).unwrap(), expected);
    }

    #[test]
    fn pause_parks_and_resume_continues() {
        let (state, out) = temp_dirs("pause");
        let sup = Supervisor::new(
            Arc::new(MockExec {
                steps: 3000,
                step_sleep: Duration::from_micros(100),
            }),
            state,
        )
        .unwrap();
        let id = sup
            .submit(scenario(&[5]), out.display().to_string(), None)
            .unwrap();
        assert!(wait_until(Duration::from_secs(10), || {
            sup.status(Some(&id)).unwrap()[0].slots_done > 10
        }));
        sup.pause(&id).unwrap();
        assert!(wait_until(Duration::from_secs(5), || {
            sup.status(Some(&id)).unwrap()[0].status == SessionStatus::Paused
        }));
        // Parked: progress freezes (allow the one-period drift).
        let frozen = sup.status(Some(&id)).unwrap()[0].slots_done;
        std::thread::sleep(Duration::from_millis(50));
        assert!(sup.status(Some(&id)).unwrap()[0].slots_done <= frozen + 1);
        // Checkpoint while paused answers without advancing.
        assert!(sup.checkpoint(&id).unwrap().contains("pause checkpoint"));
        sup.resume(&id).unwrap();
        wait_done(&sup, &id);
        sup.shutdown();
    }

    #[test]
    fn cancel_is_terminal() {
        let (state, out) = temp_dirs("cancel");
        let sup = Supervisor::new(
            Arc::new(MockExec {
                steps: 100_000,
                step_sleep: Duration::from_micros(100),
            }),
            state,
        )
        .unwrap();
        let id = sup
            .submit(
                scenario(&[1]),
                out.display().to_string(),
                Some("job-a".into()),
            )
            .unwrap();
        assert_eq!(id, "job-a");
        sup.cancel(&id).unwrap();
        assert!(wait_until(Duration::from_secs(5), || {
            sup.status(Some(&id)).unwrap()[0].status == SessionStatus::Cancelled
        }));
        assert!(sup.resume(&id).is_err());
        sup.shutdown();
    }

    #[test]
    fn checkpoint_command_persists_mid_seed_state() {
        let (state, out) = temp_dirs("ckpt");
        let sup = Supervisor::new(
            Arc::new(MockExec {
                steps: 100_000,
                step_sleep: Duration::from_micros(100),
            }),
            state.clone(),
        )
        .unwrap();
        let id = sup
            .submit(scenario(&[9]), out.display().to_string(), None)
            .unwrap();
        assert!(wait_until(Duration::from_secs(10), || {
            sup.status(Some(&id)).unwrap()[0].slots_done > 10
        }));
        let path = sup.checkpoint(&id).unwrap();
        let record = SessionRecord::load(std::path::Path::new(&path)).unwrap();
        let cp = record.checkpoint.expect("checkpoint persisted");
        assert_eq!(cp.seed, 9);
        assert!(u64_from_json(cp.state.get("i").unwrap()).unwrap() > 0);
        sup.cancel(&id).unwrap();
        sup.shutdown();
    }
}
