//! Malformed-input torture test for the daemon.
//!
//! The wire contract under attack: a client feeding the server garbage
//! — invalid JSON, non-UTF-8 bytes, half a frame, or vanishing mid-read
//! or mid-watch — may lose *its own* connection (with a wire-visible
//! error where a line can still be parsed), but must never take down
//! the supervisor or any other client's session.

use mhca_service::json::Json;
use mhca_service::{
    serve, Directive, Endpoint, Executor, JobCtrl, JobOutput, JobPlan, JobProgress, Supervisor,
};
use mhca_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Executor with two behaviours keyed on the scenario name: `slow`
/// emits a telemetry event per step for ~40 steps (so a `watch` client
/// has a live stream to abandon), `panic` panics mid-seed (so the
/// supervisor's unwind/poison recovery is exercised under load).
struct TortureExec;

impl Executor for TortureExec {
    fn validate(&self, scenario: &Json) -> Result<JobPlan, String> {
        let name = scenario
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario needs a name")?
            .to_string();
        Ok(JobPlan {
            kind: "torture".to_string(),
            seeds: vec![1],
            steppable: false,
            name,
        })
    }

    fn run_seed(
        &self,
        scenario: &Json,
        seed: u64,
        _resume_from: Option<&Json>,
        telemetry: &Telemetry,
        ctrl: &mut dyn JobCtrl,
    ) -> Result<Option<JobOutput>, String> {
        let name = scenario.get("name").and_then(Json::as_str).unwrap_or("");
        if name == "panic" {
            panic!("torture executor panics on purpose");
        }
        for step in 0..40u64 {
            match ctrl.poll(JobProgress::default()) {
                Directive::Stop | Directive::CheckpointAndStop => return Ok(None),
                Directive::Checkpoint | Directive::Continue => {}
            }
            telemetry.counter("torture.step", step);
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(Some(JobOutput {
            artifact: format!("seed,{seed}\n").into_bytes(),
            metrics: vec![("steps".to_string(), 40.0)],
        }))
    }
}

fn connect(socket: &Path) -> UnixStream {
    for _ in 0..200 {
        if let Ok(c) = UnixStream::connect(socket) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn send(conn: &mut UnixStream, line: &str) {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    conn.flush().unwrap();
}

fn recv(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// One fresh connection, one request, one response line.
fn roundtrip(socket: &Path, line: &str) -> String {
    let mut conn = connect(socket);
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    send(&mut conn, line);
    recv(&mut reader)
}

#[test]
fn daemon_survives_malformed_and_hostile_clients() {
    let base = std::env::temp_dir().join("mhca_service_torture_test");
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    let socket = base.join("daemon.sock");
    let supervisor = Arc::new(
        Supervisor::with_bus_capacity(Arc::new(TortureExec), base.join("state"), 64).unwrap(),
    );
    let server = {
        let supervisor = supervisor.clone();
        let socket = socket.clone();
        std::thread::spawn(move || serve(supervisor, Endpoint::Unix(socket)))
    };
    // Wait for the listener before the abuse starts.
    drop(connect(&socket));

    // A long-lived well-behaved control connection; every round of abuse
    // below must leave it answering.
    let mut control = connect(&socket);
    let mut control_reader = BufReader::new(control.try_clone().unwrap());

    // 1. Malformed frames on one connection get wire-visible errors and
    //    do not wedge that connection for later valid requests.
    let mut abuser = connect(&socket);
    let mut abuser_reader = BufReader::new(abuser.try_clone().unwrap());
    for garbage in [
        "not json at all",
        "{\"cmd\":",
        "{\"cmd\":\"no-such-command\"}",
        "{\"cmd\":\"watch\"}",
        "{\"cmd\":\"submit\"}",
        "[1,2,3]",
        "\"just a string\"",
        "{\"cmd\":\"pause\",\"session\":\"nope\"}",
    ] {
        send(&mut abuser, garbage);
        let resp = recv(&mut abuser_reader);
        assert!(
            resp.contains("\"ok\":false") && resp.contains("\"error\""),
            "garbage {garbage:?} must get a wire-visible error, got {resp:?}"
        );
    }
    send(&mut abuser, "{\"cmd\":\"status\"}");
    assert!(
        recv(&mut abuser_reader).contains("\"ok\":true"),
        "connection still usable after malformed frames"
    );

    // 2. Raw binary (invalid UTF-8) may cost the abuser its connection,
    //    but nothing else.
    let mut binary = connect(&socket);
    binary
        .write_all(&[0xff, 0xfe, 0x00, 0x80, 0xff, b'\n'])
        .unwrap();
    binary.flush().unwrap();
    drop(binary);

    // 3. Half a frame, then vanish: no newline ever arrives.
    let mut partial = connect(&socket);
    partial.write_all(b"{\"cmd\":\"stat").unwrap();
    partial.flush().unwrap();
    drop(partial);

    send(&mut control, "{\"cmd\":\"status\"}");
    assert!(
        recv(&mut control_reader).contains("\"ok\":true"),
        "control connection survives binary + partial-frame abuse"
    );

    // 4. A client that disconnects mid-watch while the session is live:
    //    the server's next write fails and only that handler exits.
    let out_slow = base.join("out-slow");
    let submit = format!(
        "{{\"cmd\":\"submit\",\"scenario\":{{\"name\":\"slow\"}},\"out_dir\":{}}}",
        Json::Str(out_slow.display().to_string()).to_string_compact()
    );
    send(&mut control, &submit);
    let resp = recv(&mut control_reader);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let session = resp
        .split("\"session\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("submit response carries a session id")
        .to_string();

    let mut watcher = connect(&socket);
    let mut watcher_reader = BufReader::new(watcher.try_clone().unwrap());
    send(
        &mut watcher,
        &format!("{{\"cmd\":\"watch\",\"session\":\"{session}\"}}"),
    );
    let header = recv(&mut watcher_reader);
    assert!(
        header.contains("\"ok\":true") && header.contains("\"dropped_events\""),
        "{header}"
    );
    // Read one event so the stream is demonstrably live, then vanish.
    let _ = recv(&mut watcher_reader);
    drop(watcher);
    drop(watcher_reader);

    // 5. An executor panic fails its own session; the daemon, the slow
    //    session, and the control connection all keep going.
    let out_panic = base.join("out-panic");
    let submit = format!(
        "{{\"cmd\":\"submit\",\"scenario\":{{\"name\":\"panic\"}},\"out_dir\":{}}}",
        Json::Str(out_panic.display().to_string()).to_string_compact()
    );
    send(&mut control, &submit);
    let resp = recv(&mut control_reader);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let panic_session = resp
        .split("\"session\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap()
        .to_string();

    // Both sessions reach their terminal states under a daemon that is
    // still answering on fresh connections.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let status = roundtrip(&socket, "{\"cmd\":\"status\"}");
        assert!(status.contains("\"ok\":true"), "{status}");
        let slow_done = status.contains(&format!("\"id\":\"{session}\""))
            && status.contains("\"status\":\"done\"");
        let panic_failed = status.contains(&format!("\"id\":\"{panic_session}\""))
            && status.contains("\"status\":\"failed\"");
        if slow_done && panic_failed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sessions did not settle: {status}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(out_slow.join("seed1.csv").exists(), "slow artifact written");

    // The failed session's watch stream closes with the error visible.
    let mut post = connect(&socket);
    let mut post_reader = BufReader::new(post.try_clone().unwrap());
    send(
        &mut post,
        &format!("{{\"cmd\":\"watch\",\"session\":\"{panic_session}\"}}"),
    );
    assert!(recv(&mut post_reader).contains("\"ok\":true"));
    let mut saw_failed = false;
    loop {
        let line = recv(&mut post_reader);
        if line.contains("\"closed\":true") {
            break;
        }
        saw_failed |= line.contains("failed") && line.contains("panicked");
    }
    assert!(saw_failed, "panic surfaced as a failed event on the bus");

    send(&mut control, "{\"cmd\":\"shutdown\"}");
    assert!(recv(&mut control_reader).contains("\"shutdown\":true"));
    server.join().unwrap().unwrap();
    std::fs::remove_dir_all(&base).ok();
}
