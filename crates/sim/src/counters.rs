//! Communication-complexity accounting.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::FloodEngine`] across deliveries.
///
/// * `transmissions` — local wireless broadcasts performed (one per
///   relaying vertex per flood). The paper's per-vertex communication
///   complexity `O(r² + D)` is checked against
///   `per_vertex_tx` in the `complexity` bench.
/// * `delivered` — (vertex, message) reception pairs.
/// * `timeslots` — pipelined mini-timeslots: each call to
///   [`crate::FloodEngine::deliver`] advances time by the largest TTL in
///   the batch (floods in one batch propagate concurrently, as in the
///   paper's pipelined weight broadcast).
#[derive(Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Total relay broadcasts.
    pub transmissions: u64,
    /// Total received message copies.
    pub delivered: u64,
    /// Pipelined mini-timeslots elapsed.
    pub timeslots: u64,
    /// Per-vertex relay broadcast counts.
    pub per_vertex_tx: Vec<u64>,
}

/// Hand-written so `clone_from` reuses the per-vertex storage — the round
/// loop snapshots counters into a caller-owned outcome every slot, and the
/// derived `clone_from` would reallocate the vector each time.
impl Clone for Counters {
    fn clone(&self) -> Self {
        Counters {
            transmissions: self.transmissions,
            delivered: self.delivered,
            timeslots: self.timeslots,
            per_vertex_tx: self.per_vertex_tx.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.transmissions = source.transmissions;
        self.delivered = source.delivered;
        self.timeslots = source.timeslots;
        self.per_vertex_tx.clear();
        self.per_vertex_tx.extend_from_slice(&source.per_vertex_tx);
    }
}

impl Counters {
    /// Zeroed counters for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Counters {
            transmissions: 0,
            delivered: 0,
            timeslots: 0,
            per_vertex_tx: vec![0; n],
        }
    }

    /// Maximum relay broadcasts charged to any single vertex.
    pub fn max_per_vertex_tx(&self) -> u64 {
        self.per_vertex_tx.iter().copied().max().unwrap_or(0)
    }

    /// Mean relay broadcasts per vertex.
    pub fn mean_per_vertex_tx(&self) -> f64 {
        if self.per_vertex_tx.is_empty() {
            0.0
        } else {
            self.transmissions as f64 / self.per_vertex_tx.len() as f64
        }
    }

    /// Resets all counts to zero, keeping the vertex count and reusing
    /// the per-vertex storage (no allocation).
    pub fn reset(&mut self) {
        self.transmissions = 0;
        self.delivered = 0;
        self.timeslots = 0;
        self.per_vertex_tx.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let c = Counters::new(3);
        assert_eq!(c.transmissions, 0);
        assert_eq!(c.per_vertex_tx, vec![0, 0, 0]);
        assert_eq!(c.max_per_vertex_tx(), 0);
        assert_eq!(c.mean_per_vertex_tx(), 0.0);
    }

    #[test]
    fn stats_reflect_counts() {
        let mut c = Counters::new(2);
        c.transmissions = 6;
        c.per_vertex_tx = vec![2, 4];
        assert_eq!(c.max_per_vertex_tx(), 4);
        assert_eq!(c.mean_per_vertex_tx(), 3.0);
    }

    #[test]
    fn reset_keeps_size() {
        let mut c = Counters::new(4);
        c.transmissions = 10;
        c.per_vertex_tx[1] = 5;
        c.reset();
        assert_eq!(c, Counters::new(4));
    }
}
