//! TTL-limited flood delivery.
//!
//! The engine is **long-lived and allocation-free in steady state**: it is
//! built once per graph, keeps epoch-stamped BFS scratch for the lossy
//! path, and precomputes packed [`CompactBallTable`] r-hop neighborhood
//! tables for the lossless path (the conflict graph is static across a whole horizon, so
//! a TTL-bounded lossless flood is a table scan, not a BFS). Callers on
//! the hot path use [`FloodEngine::deliver_into`] with reusable inboxes;
//! [`FloodEngine::deliver`] remains as an allocating convenience.

use crate::counters::Counters;
use crate::loss::SkipSampler;
use mhca_graph::{CompactBallTable, Graph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Declarative loss-model knob for spec-driven experiment construction:
/// `prob = 0` is lossless delivery, `prob > 0` drops each relay broadcast
/// independently with that probability, drawn from a counter-based
/// per-flood stream keyed by `seed` ([`SkipSampler`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LossSpec {
    /// Per-relay drop probability in `[0, 1)`.
    pub prob: f64,
    /// Seed of the loss stream (ignored when `prob == 0`).
    pub seed: u64,
}

impl LossSpec {
    /// Perfect delivery.
    pub fn lossless() -> Self {
        LossSpec::default()
    }

    /// Failure injection: drop each relay with probability `prob`.
    pub fn lossy(prob: f64, seed: u64) -> Self {
        LossSpec { prob, seed }
    }

    /// `true` when no loss is injected.
    pub fn is_lossless(&self) -> bool {
        self.prob == 0.0
    }
}

/// Default cap on the **total** entries cached across an engine's ball
/// tables. Tables use the packed [`CompactBallTable`] layout (4 bytes per
/// entry), so the default bounds table memory at the same 32 MiB per
/// engine as before the compact layout — at twice the entries, pushing
/// the BFS-fallback wall out to networks twice as large. Small and
/// mid-size networks never come close; dense large-N graphs hit the cap
/// and transparently fall back to per-flood BFS on the epoch-stamped
/// scratch (counted by [`FloodEngine::fallback_floods`]).
pub const DEFAULT_TABLE_ENTRY_CAP: usize = 1 << 23;

/// Cache slot for one radius' ball table.
#[derive(Debug, Default, Clone)]
enum TableSlot {
    /// Never attempted.
    #[default]
    Unbuilt,
    /// Built and cached.
    Built(Arc<CompactBallTable>),
    /// Attempted, but the entry cap was exceeded (or the graph is beyond
    /// the packed layout's 24-bit vertex / 8-bit distance limits) —
    /// floods at this radius permanently use the BFS fallback (the graph
    /// is static, so retrying would fail identically).
    Capped,
}

/// A hop-limited local broadcast: `payload` floods from `origin` to every
/// vertex within `ttl` hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flood<P> {
    /// Originating vertex.
    pub origin: usize,
    /// Maximum hop count the flood travels.
    pub ttl: usize,
    /// Message content.
    pub payload: P,
}

/// A message copy received by some vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<P> {
    /// The flood's originating vertex.
    pub origin: usize,
    /// Hop distance the copy travelled.
    pub distance: usize,
    /// Message content.
    pub payload: P,
}

/// Synchronous flood-delivery engine over a fixed graph.
///
/// Delivery is deterministic unless a loss model is installed with
/// [`FloodEngine::with_loss`]; loss draws come from a seeded counter-based
/// per-flood stream ([`SkipSampler`]) so even failure-injection runs are
/// reproducible — and each flood's realization is independent of every
/// other flood's relay count.
///
/// # Reuse
///
/// Build the engine **once** per graph and keep it across rounds: lossless
/// deliveries are served from cached per-TTL neighborhood tables (built
/// lazily on first use, or eagerly via [`FloodEngine::prewarm`]), and the
/// lossy path reuses epoch-stamped BFS scratch. After warm-up, neither
/// path allocates.
#[derive(Debug)]
pub struct FloodEngine<'g> {
    graph: &'g Graph,
    counters: Counters,
    loss_prob: f64,
    /// Per-flood geometric skip-sampler for the lossy path: each flood's
    /// drop realization is a pure function of `(seed, flood index)`, so
    /// floods sample independently of one another and per-relay queries
    /// match batch materialization byte for byte.
    loss: SkipSampler,
    /// Floods served by the BFS fallback because their radius' ball table
    /// was over the entry cap (never incremented by deliberate lossy BFS)
    /// — the diagnostic that makes large-N slowdowns attributable.
    fallback_floods: u64,
    /// Lossless fast path: `tables[r]` holds the radius-`r` ball table.
    /// Indexed by *effective* TTL (clamped to `n`, where every ball has
    /// saturated), so the vector stays small for any caller TTL. Shared
    /// (`Arc`) so same-graph engines can adopt each other's tables
    /// instead of rebuilding them ([`FloodEngine::adopt_tables`]).
    /// Building respects `table_entry_cap`; radii whose table would blow
    /// the cap are marked [`TableSlot::Capped`] and served by BFS.
    tables: Vec<TableSlot>,
    /// Cap on total cached entries across all radii
    /// ([`DEFAULT_TABLE_ENTRY_CAP`] unless overridden).
    table_entry_cap: usize,
    /// Lossy-path BFS scratch: `stamp[v] == epoch` marks `v` visited in
    /// the current flood.
    stamp: Vec<u32>,
    epoch: u32,
    dist: Vec<u32>,
    queue: VecDeque<usize>,
}

impl<'g> FloodEngine<'g> {
    /// Engine with perfect (lossless) delivery.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_loss_internal(graph, 0.0, 0)
    }

    /// Engine that drops each relay broadcast independently with
    /// probability `loss_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob ∉ [0, 1)`.
    pub fn with_loss(graph: &'g Graph, loss_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        Self::with_loss_internal(graph, loss_prob, seed)
    }

    /// Engine built from a declarative [`LossSpec`] (the spec-driven
    /// construction path of experiment campaigns).
    ///
    /// # Panics
    ///
    /// As [`FloodEngine::with_loss`] when the spec is lossy.
    pub fn from_spec(graph: &'g Graph, loss: &LossSpec) -> Self {
        if loss.is_lossless() {
            Self::new(graph)
        } else {
            Self::with_loss(graph, loss.prob, loss.seed)
        }
    }

    fn with_loss_internal(graph: &'g Graph, loss_prob: f64, seed: u64) -> Self {
        let n = graph.n();
        FloodEngine {
            graph,
            counters: Counters::new(n),
            loss_prob,
            loss: SkipSampler::new(loss_prob, seed),
            fallback_floods: 0,
            tables: Vec::new(),
            table_entry_cap: DEFAULT_TABLE_ENTRY_CAP,
            stamp: vec![0; n],
            epoch: 0,
            dist: vec![0; n],
            queue: VecDeque::new(),
        }
    }

    /// Overrides the cap on total cached ball-table entries (large-N
    /// memory control). Lowering the cap below what is already cached
    /// keeps existing tables but stops further builds; radii already
    /// marked capped stay capped.
    pub fn set_table_entry_cap(&mut self, cap: usize) {
        self.table_entry_cap = cap;
    }

    /// Total entries currently cached across all ball tables (each entry
    /// is 4 packed bytes) — the memory diagnostic the cap bounds.
    pub fn cached_table_entries(&self) -> usize {
        self.tables
            .iter()
            .map(|slot| match slot {
                TableSlot::Built(t) => t.total_entries(),
                _ => 0,
            })
            .sum()
    }

    /// The graph this engine delivers over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Accumulated communication counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the counters (e.g. between protocol phases) without
    /// releasing their storage. Also zeroes the fallback-flood counter.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
        self.fallback_floods = 0;
    }

    /// Overwrites the accumulated counters with a previously captured
    /// snapshot (checkpoint restore; the inverse of cloning
    /// [`FloodEngine::counters`]).
    ///
    /// # Panics
    ///
    /// Panics if `saved` was captured on a different-sized graph.
    pub fn restore_counters(&mut self, saved: &Counters) {
        assert_eq!(
            saved.per_vertex_tx.len(),
            self.graph.n(),
            "counters snapshot is for a different graph size"
        );
        self.counters.clone_from(saved);
    }

    /// Sets the fallback-flood tally (checkpoint restore, paired with
    /// [`FloodEngine::fallback_floods`]).
    pub fn set_fallback_floods(&mut self, n: u64) {
        self.fallback_floods = n;
    }

    /// The loss stream's flood index (`0` for lossless engines or before
    /// the first lossy flood) — with [`FloodEngine::set_loss_flood_index`]
    /// this checkpoints the only cross-flood state the loss model keeps.
    pub fn loss_flood_index(&self) -> u64 {
        self.loss.flood_index()
    }

    /// Repositions the loss stream between floods (checkpoint restore;
    /// see [`SkipSampler::set_flood_index`]). No-op in effect for
    /// lossless engines, which never consult the sampler.
    pub fn set_loss_flood_index(&mut self, flood: u64) {
        self.loss.set_flood_index(flood);
    }

    /// Floods since the last [`FloodEngine::reset_counters`] that ran on
    /// the per-flood BFS fallback because their radius' ball table was
    /// over the entry cap (or beyond the packed layout's limits).
    /// Deliberate lossy BFS floods do **not** count — this counter is
    /// exactly the "silent slowdown" diagnostic: nonzero means lossless
    /// floods stopped being table scans.
    pub fn fallback_floods(&self) -> u64 {
        self.fallback_floods
    }

    /// Eagerly builds the lossless neighborhood table for `ttl`, so the
    /// first `deliver` call is as fast as the rest. No-op for lossy
    /// engines (they always BFS), for already-built tables, and for radii
    /// over the entry cap (which stay on the BFS fallback).
    pub fn prewarm(&mut self, ttl: usize) {
        if self.loss_prob == 0.0 && ttl > 0 {
            let eff = ttl.min(self.graph.n());
            Self::table_for(&mut self.tables, self.table_entry_cap, self.graph, eff);
        }
    }

    /// Delivers a batch of concurrent floods, allocating fresh inboxes.
    ///
    /// Returns one inbox per vertex. A vertex does **not** receive its own
    /// flood. Within one batch all floods propagate concurrently, so the
    /// pipelined time charge is the maximum TTL in the batch.
    ///
    /// Hot paths should prefer [`FloodEngine::deliver_into`].
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver<P: Clone>(&mut self, floods: &[Flood<P>]) -> Vec<Vec<Received<P>>> {
        let mut inboxes = Vec::new();
        self.deliver_into(floods, &mut inboxes);
        inboxes
    }

    /// Delivers a batch of concurrent floods into caller-owned inboxes.
    ///
    /// `inboxes` is resized to one entry per vertex and each inbox is
    /// cleared (capacity retained) before delivery — after warm-up the
    /// call performs no heap allocation on the lossless path.
    ///
    /// Semantics match [`FloodEngine::deliver`]: no self-delivery, and the
    /// batch advances `timeslots` by its maximum TTL.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver_into<P: Clone>(
        &mut self,
        floods: &[Flood<P>],
        inboxes: &mut Vec<Vec<Received<P>>>,
    ) {
        self.deliver_with(floods, inboxes, &|p: &P| p.clone());
    }

    /// As [`FloodEngine::deliver_into`] for `Copy` payloads: receptions
    /// copy the payload by value instead of going through `Clone::clone`.
    /// This is the hot path for protocol messages (which are word-sized)
    /// on the lossy BFS route, where the generic path used to pay one
    /// clone call per reception.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver_copy_into<P: Copy>(
        &mut self,
        floods: &[Flood<P>],
        inboxes: &mut Vec<Vec<Received<P>>>,
    ) {
        self.deliver_with(floods, inboxes, &|p: &P| *p);
    }

    /// Shared delivery loop; `dup` materializes one payload per reception
    /// (`Clone::clone` for the generic path, a plain copy for `Copy`
    /// payloads).
    fn deliver_with<P>(
        &mut self,
        floods: &[Flood<P>],
        inboxes: &mut Vec<Vec<Received<P>>>,
        dup: &impl Fn(&P) -> P,
    ) {
        let n = self.graph.n();
        if inboxes.len() != n {
            inboxes.resize_with(n, Vec::new);
        }
        for inbox in inboxes.iter_mut() {
            inbox.clear();
        }
        let mut max_ttl = 0;
        for flood in floods {
            assert!(flood.origin < n, "flood origin out of range");
            max_ttl = max_ttl.max(flood.ttl);
            if self.loss_prob > 0.0 {
                self.flood_bfs(flood, inboxes, dup);
            } else {
                self.flood_table(flood, inboxes, dup);
            }
        }
        self.counters.timeslots += max_ttl as u64;
    }

    /// Delivers a batch of concurrent floods **for accounting only**: the
    /// counters advance exactly as in [`FloodEngine::deliver_into`], but
    /// no inboxes are materialized. Use when the protocol phase only
    /// needs the broadcast to have *happened* (weight broadcasts, leader
    /// declarations) — skipping the per-reception pushes removes the
    /// dominant remaining per-round work of those phases.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn broadcast_only<P>(&mut self, floods: &[Flood<P>]) {
        let n = self.graph.n();
        let mut max_ttl = 0;
        for flood in floods {
            assert!(flood.origin < n, "flood origin out of range");
            max_ttl = max_ttl.max(flood.ttl);
            if self.loss_prob > 0.0 {
                self.flood_bfs_counts(flood.origin, flood.ttl);
            } else {
                self.flood_table_counts(flood.origin, flood.ttl);
            }
        }
        self.counters.timeslots += max_ttl as u64;
    }

    /// Counters-only lossless delivery: one table scan, no receptions;
    /// BFS fallback when the radius is over the table cap.
    fn flood_table_counts(&mut self, origin: usize, ttl: usize) {
        if ttl == 0 {
            return;
        }
        let eff = ttl.min(self.graph.n());
        let Some(table) = Self::table_for(&mut self.tables, self.table_entry_cap, self.graph, eff)
        else {
            self.fallback_floods += 1;
            self.flood_bfs_counts(origin, ttl);
            return;
        };
        let ball = table.ball_packed(origin);
        self.counters.transmissions += 1;
        self.counters.per_vertex_tx[origin] += 1;
        self.counters.delivered += ball.len() as u64;
        // Entries are distance-sorted: members before the TTL boundary
        // relay exactly once each.
        let relays = ball.partition_point(|&e| CompactBallTable::entry_distance(e) < ttl);
        self.counters.transmissions += relays as u64;
        for &e in &ball[..relays] {
            self.counters.per_vertex_tx[CompactBallTable::entry_vertex(e)] += 1;
        }
    }

    /// Counters-only lossy delivery: the BFS wave of `flood_bfs` minus
    /// the reception pushes (the per-flood drop stream is a pure function
    /// of the flood index, so the counting and delivering paths agree).
    fn flood_bfs_counts(&mut self, origin: usize, ttl: usize) {
        let graph = self.graph;
        if self.loss_prob > 0.0 {
            self.loss.begin_flood();
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.stamp[origin] = epoch;
        self.dist[origin] = 0;
        self.queue.clear();
        self.queue.push_back(origin);
        while let Some(u) = self.queue.pop_front() {
            if self.dist[u] as usize == ttl {
                continue;
            }
            self.counters.transmissions += 1;
            self.counters.per_vertex_tx[u] += 1;
            if self.loss_prob > 0.0 && self.loss.should_drop() {
                continue;
            }
            for &w in graph.neighbors(u) {
                if self.stamp[w] != epoch {
                    self.stamp[w] = epoch;
                    self.dist[w] = self.dist[u] + 1;
                    self.counters.delivered += 1;
                    self.queue.push_back(w);
                }
            }
        }
    }

    /// Returns the cached ball table for `radius`, building it on first
    /// use — or `None` when the build would push the engine's cached
    /// entries past `cap` (the slot is then marked capped permanently and
    /// the caller uses the BFS fallback). An associated function over the
    /// `tables` field so callers can keep disjoint borrows of `counters`.
    fn table_for<'t>(
        tables: &'t mut Vec<TableSlot>,
        cap: usize,
        graph: &Graph,
        radius: usize,
    ) -> Option<&'t CompactBallTable> {
        if tables.len() <= radius {
            tables.resize_with(radius + 1, TableSlot::default);
        }
        if matches!(tables[radius], TableSlot::Unbuilt) {
            let used: usize = tables
                .iter()
                .map(|slot| match slot {
                    TableSlot::Built(t) => t.total_entries(),
                    _ => 0,
                })
                .sum();
            let budget = cap.saturating_sub(used);
            tables[radius] = match CompactBallTable::build_capped(graph, radius, budget) {
                Some(t) => TableSlot::Built(Arc::new(t)),
                None => TableSlot::Capped,
            };
        }
        match &tables[radius] {
            TableSlot::Built(t) => Some(t),
            _ => None,
        }
    }

    /// Adopts another engine's cached ball tables (cheap `Arc` clones),
    /// so two engines over the same graph build each radius only once —
    /// e.g. the Algorithm 2 runner's WB engine and the strategy
    /// decision's engine both flood within `2r+1` hops.
    ///
    /// Tables this engine already holds are kept.
    ///
    /// # Panics
    ///
    /// Panics if the engines deliver over different graphs.
    pub fn adopt_tables(&mut self, other: &FloodEngine<'_>) {
        assert!(
            std::ptr::eq(self.graph, other.graph),
            "engines must share a graph to share tables"
        );
        if self.tables.len() < other.tables.len() {
            self.tables
                .resize_with(other.tables.len(), TableSlot::default);
        }
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            // Adopting shares the allocation (`Arc`), so it never adds
            // memory — the entry cap only constrains fresh builds. Capped
            // marks are not adopted: the caps may differ.
            if matches!(mine, TableSlot::Unbuilt) {
                if let TableSlot::Built(t) = theirs {
                    *mine = TableSlot::Built(Arc::clone(t));
                }
            }
        }
    }

    /// Lossless delivery of one flood from the precomputed ball table,
    /// with BFS fallback for radii over the entry cap.
    ///
    /// In a lossless synchronous flood every vertex holding a copy at
    /// distance `< ttl` relays exactly once (the origin included) and
    /// every ball member receives exactly one copy at its BFS distance, so
    /// the table scan reproduces the BFS wave — receptions in distance
    /// order — without traversing edges.
    fn flood_table<P>(
        &mut self,
        flood: &Flood<P>,
        inboxes: &mut [Vec<Received<P>>],
        dup: &impl Fn(&P) -> P,
    ) {
        if flood.ttl == 0 {
            return; // hold without relaying: no cost, no receptions
        }
        let eff = flood.ttl.min(self.graph.n());
        let Some(table) = Self::table_for(&mut self.tables, self.table_entry_cap, self.graph, eff)
        else {
            // Over-cap radius: the lossless BFS wave visits the same
            // vertices in the same order and never touches the loss
            // sampler.
            self.fallback_floods += 1;
            self.flood_bfs(flood, inboxes, dup);
            return;
        };
        // The origin always performs the first broadcast.
        self.counters.transmissions += 1;
        self.counters.per_vertex_tx[flood.origin] += 1;
        for &e in table.ball_packed(flood.origin) {
            let v = CompactBallTable::entry_vertex(e);
            let d = CompactBallTable::entry_distance(e);
            inboxes[v].push(Received {
                origin: flood.origin,
                distance: d,
                payload: dup(&flood.payload),
            });
            self.counters.delivered += 1;
            if d < flood.ttl {
                // Holds a copy with TTL budget left: relays once.
                self.counters.transmissions += 1;
                self.counters.per_vertex_tx[v] += 1;
            }
        }
    }

    /// BFS wave for a single flood with per-relay loss, on epoch-stamped
    /// scratch (no allocation after the first call). Also the lossless
    /// fallback for radii whose ball table is over the entry cap.
    fn flood_bfs<P>(
        &mut self,
        flood: &Flood<P>,
        inboxes: &mut [Vec<Received<P>>],
        dup: &impl Fn(&P) -> P,
    ) {
        let graph = self.graph;
        if self.loss_prob > 0.0 {
            self.loss.begin_flood();
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.stamp[flood.origin] = epoch;
        self.dist[flood.origin] = 0;
        self.queue.clear();
        self.queue.push_back(flood.origin);
        while let Some(u) = self.queue.pop_front() {
            if self.dist[u] as usize == flood.ttl {
                continue; // TTL exhausted: hold but don't relay.
            }
            // One wireless broadcast by u (possibly lost as a whole).
            self.counters.transmissions += 1;
            self.counters.per_vertex_tx[u] += 1;
            if self.loss_prob > 0.0 && self.loss.should_drop() {
                continue;
            }
            for &w in graph.neighbors(u) {
                if self.stamp[w] != epoch {
                    self.stamp[w] = epoch;
                    self.dist[w] = self.dist[u] + 1;
                    inboxes[w].push(Received {
                        origin: flood.origin,
                        distance: self.dist[w] as usize,
                        payload: dup(&flood.payload),
                    });
                    self.counters.delivered += 1;
                    self.queue.push_back(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn flood_reaches_exactly_the_ttl_ball() {
        let g = topology::line(7);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 3,
            ttl: 2,
            payload: (),
        }]);
        for (v, inbox) in inboxes.iter().enumerate() {
            let d = g.hop_distance(3, v).unwrap();
            if v != 3 && d <= 2 {
                assert_eq!(inbox.len(), 1, "vertex {v} should receive");
                assert_eq!(inbox[0].distance, d);
            } else {
                assert!(inbox.is_empty(), "vertex {v} should not receive");
            }
        }
    }

    #[test]
    fn origin_does_not_receive_its_own_flood() {
        let g = topology::ring(4);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 0,
            ttl: 3,
            payload: 42u32,
        }]);
        assert!(inboxes[0].is_empty());
    }

    #[test]
    fn ttl_zero_reaches_nobody_and_costs_nothing() {
        let g = topology::line(3);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 1,
            ttl: 0,
            payload: (),
        }]);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(e.counters().transmissions, 0);
        assert_eq!(e.counters().timeslots, 0);
    }

    #[test]
    fn transmissions_count_relays_within_ttl() {
        // Line 0-1-2-3-4, flood from 0 with ttl 2: relayers are 0 and 1.
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().transmissions, 2);
        assert_eq!(e.counters().per_vertex_tx[0], 1);
        assert_eq!(e.counters().per_vertex_tx[1], 1);
        assert_eq!(e.counters().delivered, 2); // vertices 1 and 2
    }

    #[test]
    fn broadcast_only_matches_deliver_counters() {
        let g = topology::grid(4, 5);
        let floods = [
            Flood {
                origin: 0,
                ttl: 3,
                payload: (),
            },
            Flood {
                origin: 19,
                ttl: 2,
                payload: (),
            },
            Flood {
                origin: 7,
                ttl: 0,
                payload: (),
            },
        ];
        let mut full = FloodEngine::new(&g);
        let _ = full.deliver(&floods);
        let mut counting = FloodEngine::new(&g);
        counting.broadcast_only(&floods);
        assert_eq!(full.counters(), counting.counters());

        // Lossy path: identical seeds consume identical RNG streams, so
        // the counters agree too.
        let mut full = FloodEngine::with_loss(&g, 0.3, 11);
        let _ = full.deliver(&floods);
        let mut counting = FloodEngine::with_loss(&g, 0.3, 11);
        counting.broadcast_only(&floods);
        assert_eq!(full.counters(), counting.counters());
    }

    #[test]
    fn adopted_tables_are_shared_and_equivalent() {
        let g = topology::grid(4, 4);
        let mut a = FloodEngine::new(&g);
        a.prewarm(3);
        let mut b = FloodEngine::new(&g);
        b.adopt_tables(&a);
        let arc_of = |e: &FloodEngine, r: usize| match &e.tables[r] {
            TableSlot::Built(t) => Arc::clone(t),
            other => panic!("expected built table at radius {r}, got {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&arc_of(&a, 3), &arc_of(&b, 3)),
            "adopted table must be the same allocation"
        );
        let floods = [Flood {
            origin: 5,
            ttl: 3,
            payload: (),
        }];
        assert_eq!(a.deliver(&floods), b.deliver(&floods));
    }

    #[test]
    #[should_panic(expected = "share a graph")]
    fn adopting_across_graphs_panics() {
        let g1 = topology::line(4);
        let g2 = topology::line(4);
        let a = FloodEngine::new(&g1);
        let mut b = FloodEngine::new(&g2);
        b.adopt_tables(&a);
    }

    #[test]
    fn batch_timeslots_use_max_ttl() {
        let g = topology::line(6);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[
            Flood {
                origin: 0,
                ttl: 1,
                payload: (),
            },
            Flood {
                origin: 5,
                ttl: 4,
                payload: (),
            },
        ]);
        assert_eq!(e.counters().timeslots, 4);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().timeslots, 6);
    }

    #[test]
    fn concurrent_floods_have_independent_inboxes() {
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[
            Flood {
                origin: 0,
                ttl: 4,
                payload: "a",
            },
            Flood {
                origin: 4,
                ttl: 4,
                payload: "b",
            },
        ]);
        assert_eq!(inboxes[2].len(), 2);
        let mut payloads: Vec<&str> = inboxes[2].iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec!["a", "b"]);
    }

    #[test]
    fn deliver_into_reuses_and_matches_deliver() {
        let g = topology::grid(4, 4);
        let floods = [
            Flood {
                origin: 0,
                ttl: 3,
                payload: 1u32,
            },
            Flood {
                origin: 15,
                ttl: 2,
                payload: 2u32,
            },
        ];
        let mut fresh = FloodEngine::new(&g);
        let expect = fresh.deliver(&floods);
        let mut reused = FloodEngine::new(&g);
        let mut inboxes = Vec::new();
        for _ in 0..3 {
            reused.deliver_into(&floods, &mut inboxes);
            assert_eq!(inboxes, expect);
        }
        // Counters accumulate linearly across identical deliveries.
        assert_eq!(
            reused.counters().transmissions,
            3 * fresh.counters().transmissions
        );
        assert_eq!(reused.counters().delivered, 3 * fresh.counters().delivered);
    }

    #[test]
    fn huge_ttl_is_clamped_not_allocated() {
        let g = topology::line(4);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 0,
            ttl: usize::MAX,
            payload: (),
        }]);
        assert!(inboxes[1..].iter().all(|b| b.len() == 1));
        // Only the saturated table exists (radius ≤ n).
        assert!(e.tables.len() <= g.n() + 1);
    }

    #[test]
    fn lossy_path_matches_lossless_when_no_drop_fires() {
        // loss_prob tiny enough that no draw fires in this run: the BFS
        // path must agree with the table path exactly.
        let g = topology::grid(3, 5);
        let floods = [Flood {
            origin: 7,
            ttl: 3,
            payload: (),
        }];
        let mut lossless = FloodEngine::new(&g);
        let a = lossless.deliver(&floods);
        let mut nearly = FloodEngine::with_loss(&g, 1e-12, 5);
        let b = nearly.deliver(&floods);
        assert_eq!(a, b);
        assert_eq!(
            lossless.counters().transmissions,
            nearly.counters().transmissions
        );
    }

    #[test]
    fn total_loss_blocks_beyond_first_hop_never_the_math() {
        // loss = 0.999…: with a seeded RNG, eventually every relay drops;
        // here we use a high but valid probability and just assert safety
        // properties (no panic, inbox subset of the lossless run).
        let g = topology::line(6);
        let mut lossless = FloodEngine::new(&g);
        let full = lossless.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        let mut lossy = FloodEngine::with_loss(&g, 0.9, 7);
        let some = lossy.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        for v in 0..6 {
            assert!(some[v].len() <= full[v].len());
        }
    }

    #[test]
    fn lossy_delivery_is_reproducible_per_seed() {
        let g = topology::grid(4, 4);
        let run = |seed| {
            let mut e = FloodEngine::with_loss(&g, 0.3, seed);
            let boxes = e.deliver(&[Flood {
                origin: 0,
                ttl: 6,
                payload: (),
            }]);
            boxes.iter().map(|b| b.len()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn capped_engine_falls_back_to_bfs_and_matches() {
        let g = topology::grid(4, 5);
        let floods = [
            Flood {
                origin: 3,
                ttl: 3,
                payload: 7u32,
            },
            Flood {
                origin: 17,
                ttl: 2,
                payload: 9u32,
            },
        ];
        let mut tabled = FloodEngine::new(&g);
        let expect = tabled.deliver(&floods);
        assert!(tabled.cached_table_entries() > 0);

        let mut capped = FloodEngine::new(&g);
        capped.set_table_entry_cap(0);
        let got = capped.deliver(&floods);
        assert_eq!(got, expect, "BFS fallback must reproduce the table path");
        assert_eq!(capped.counters(), tabled.counters());
        assert_eq!(capped.cached_table_entries(), 0);
        // The silent fallback is surfaced: one increment per fallen-back
        // flood on the capped engine, none on the tabled one.
        assert_eq!(tabled.fallback_floods(), 0);
        assert_eq!(capped.fallback_floods(), floods.len() as u64);
        // broadcast_only agrees too.
        let mut counting = FloodEngine::new(&g);
        counting.set_table_entry_cap(0);
        counting.broadcast_only(&floods);
        assert_eq!(counting.counters(), tabled.counters());
        assert_eq!(counting.fallback_floods(), floods.len() as u64);
        // reset_counters clears the fallback tally alongside the rest.
        capped.reset_counters();
        assert_eq!(capped.fallback_floods(), 0);
    }

    #[test]
    fn deliberate_lossy_bfs_does_not_count_as_fallback() {
        let g = topology::grid(3, 4);
        let mut e = FloodEngine::with_loss(&g, 0.3, 9);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 3,
            payload: (),
        }]);
        assert_eq!(e.fallback_floods(), 0);
    }

    #[test]
    fn lossy_flood_realization_is_independent_of_batch_shape() {
        // With counter-based per-flood streams, a flood's realization must
        // not depend on how many relays *earlier* floods consumed — only
        // on its position in the flood sequence. Deliver the same probe
        // flood after equally-many but very differently-sized warm-up
        // floods and require identical inboxes. (The legacy single-stream
        // RNG fails this.)
        let g = topology::grid(5, 6);
        let probe = Flood {
            origin: 14,
            ttl: 4,
            payload: 1u32,
        };
        let run_after = |warmup: &[Flood<u32>]| {
            let mut e = FloodEngine::with_loss(&g, 0.35, 21);
            let _ = e.deliver(warmup);
            e.deliver(std::slice::from_ref(&probe))
        };
        let small = [Flood {
            origin: 0,
            ttl: 1,
            payload: 0u32,
        }];
        let big = [Flood {
            origin: 0,
            ttl: 6,
            payload: 0u32,
        }];
        assert_eq!(
            run_after(&small),
            run_after(&big),
            "flood realizations must be independent of predecessor batch shape"
        );
    }

    #[test]
    fn cap_budget_is_shared_across_radii() {
        let g = topology::grid(5, 5);
        let mut e = FloodEngine::new(&g);
        // Let radius 1 fit, then shrink the budget so radius 4 cannot.
        e.prewarm(1);
        let used = e.cached_table_entries();
        assert!(used > 0);
        e.set_table_entry_cap(used + 1);
        let floods = [Flood {
            origin: 12,
            ttl: 4,
            payload: (),
        }];
        let mut reference = FloodEngine::new(&g);
        let expect = reference.deliver(&floods);
        assert_eq!(e.deliver(&floods), expect);
        // Radius 4 was refused; only the radius-1 table is cached.
        assert_eq!(e.cached_table_entries(), used);
        assert!(matches!(e.tables[4], TableSlot::Capped));
        // Capped radii stay capped even after repeated use.
        let _ = e.deliver(&floods);
        assert!(matches!(e.tables[4], TableSlot::Capped));
    }

    #[test]
    fn deliver_copy_into_matches_clone_path() {
        let g = topology::grid(4, 4);
        let floods = [
            Flood {
                origin: 0,
                ttl: 3,
                payload: 1u32,
            },
            Flood {
                origin: 15,
                ttl: 2,
                payload: 2u32,
            },
        ];
        let mut a = FloodEngine::new(&g);
        let mut b = FloodEngine::new(&g);
        let mut cloned = Vec::new();
        let mut copied = Vec::new();
        a.deliver_into(&floods, &mut cloned);
        b.deliver_copy_into(&floods, &mut copied);
        assert_eq!(cloned, copied);
        assert_eq!(a.counters(), b.counters());

        // Lossy path: identical seeds consume identical RNG streams.
        let mut a = FloodEngine::with_loss(&g, 0.3, 17);
        let mut b = FloodEngine::with_loss(&g, 0.3, 17);
        a.deliver_into(&floods, &mut cloned);
        b.deliver_copy_into(&floods, &mut copied);
        assert_eq!(cloned, copied);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn loss_spec_construction() {
        let g = topology::line(5);
        let floods = [Flood {
            origin: 0,
            ttl: 4,
            payload: (),
        }];
        assert!(LossSpec::lossless().is_lossless());
        assert!(!LossSpec::lossy(0.3, 9).is_lossless());

        let mut from_spec = FloodEngine::from_spec(&g, &LossSpec::lossless());
        let mut direct = FloodEngine::new(&g);
        assert_eq!(from_spec.deliver(&floods), direct.deliver(&floods));

        let mut from_spec = FloodEngine::from_spec(&g, &LossSpec::lossy(0.4, 9));
        let mut direct = FloodEngine::with_loss(&g, 0.4, 9);
        assert_eq!(from_spec.deliver(&floods), direct.deliver(&floods));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_origin_panics() {
        let g = topology::line(2);
        let mut e = FloodEngine::new(&g);
        let _ = e.deliver(&[Flood {
            origin: 9,
            ttl: 1,
            payload: (),
        }]);
    }
}
