//! TTL-limited flood delivery.
//!
//! The engine is **long-lived and allocation-free in steady state**: it is
//! built once per graph, keeps epoch-stamped BFS scratch for the lossy
//! path, and precomputes [`BallTable`] r-hop neighborhood tables for the
//! lossless path (the conflict graph is static across a whole horizon, so
//! a TTL-bounded lossless flood is a table scan, not a BFS). Callers on
//! the hot path use [`FloodEngine::deliver_into`] with reusable inboxes;
//! [`FloodEngine::deliver`] remains as an allocating convenience.

use crate::counters::Counters;
use mhca_graph::{BallTable, Graph};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// A hop-limited local broadcast: `payload` floods from `origin` to every
/// vertex within `ttl` hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flood<P> {
    /// Originating vertex.
    pub origin: usize,
    /// Maximum hop count the flood travels.
    pub ttl: usize,
    /// Message content.
    pub payload: P,
}

/// A message copy received by some vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<P> {
    /// The flood's originating vertex.
    pub origin: usize,
    /// Hop distance the copy travelled.
    pub distance: usize,
    /// Message content.
    pub payload: P,
}

/// Synchronous flood-delivery engine over a fixed graph.
///
/// Delivery is deterministic unless a loss model is installed with
/// [`FloodEngine::with_loss`]; loss draws come from a seeded RNG so even
/// failure-injection runs are reproducible.
///
/// # Reuse
///
/// Build the engine **once** per graph and keep it across rounds: lossless
/// deliveries are served from cached per-TTL neighborhood tables (built
/// lazily on first use, or eagerly via [`FloodEngine::prewarm`]), and the
/// lossy path reuses epoch-stamped BFS scratch. After warm-up, neither
/// path allocates.
#[derive(Debug)]
pub struct FloodEngine<'g> {
    graph: &'g Graph,
    counters: Counters,
    loss_prob: f64,
    rng: StdRng,
    /// Lossless fast path: `tables[r]` holds the radius-`r` ball table.
    /// Indexed by *effective* TTL (clamped to `n`, where every ball has
    /// saturated), so the vector stays small for any caller TTL. Shared
    /// (`Arc`) so same-graph engines can adopt each other's tables
    /// instead of rebuilding them ([`FloodEngine::adopt_tables`]).
    tables: Vec<Option<Arc<BallTable>>>,
    /// Lossy-path BFS scratch: `stamp[v] == epoch` marks `v` visited in
    /// the current flood.
    stamp: Vec<u32>,
    epoch: u32,
    dist: Vec<u32>,
    queue: VecDeque<usize>,
}

impl<'g> FloodEngine<'g> {
    /// Engine with perfect (lossless) delivery.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_loss_internal(graph, 0.0, 0)
    }

    /// Engine that drops each relay broadcast independently with
    /// probability `loss_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob ∉ [0, 1)`.
    pub fn with_loss(graph: &'g Graph, loss_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        Self::with_loss_internal(graph, loss_prob, seed)
    }

    fn with_loss_internal(graph: &'g Graph, loss_prob: f64, seed: u64) -> Self {
        let n = graph.n();
        FloodEngine {
            graph,
            counters: Counters::new(n),
            loss_prob,
            rng: StdRng::seed_from_u64(seed),
            tables: Vec::new(),
            stamp: vec![0; n],
            epoch: 0,
            dist: vec![0; n],
            queue: VecDeque::new(),
        }
    }

    /// The graph this engine delivers over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Accumulated communication counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the counters (e.g. between protocol phases) without
    /// releasing their storage.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Eagerly builds the lossless neighborhood table for `ttl`, so the
    /// first `deliver` call is as fast as the rest. No-op for lossy
    /// engines (they always BFS) and for already-built tables.
    pub fn prewarm(&mut self, ttl: usize) {
        if self.loss_prob == 0.0 && ttl > 0 {
            let eff = ttl.min(self.graph.n());
            Self::table_for(&mut self.tables, self.graph, eff);
        }
    }

    /// Delivers a batch of concurrent floods, allocating fresh inboxes.
    ///
    /// Returns one inbox per vertex. A vertex does **not** receive its own
    /// flood. Within one batch all floods propagate concurrently, so the
    /// pipelined time charge is the maximum TTL in the batch.
    ///
    /// Hot paths should prefer [`FloodEngine::deliver_into`].
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver<P: Clone>(&mut self, floods: &[Flood<P>]) -> Vec<Vec<Received<P>>> {
        let mut inboxes = Vec::new();
        self.deliver_into(floods, &mut inboxes);
        inboxes
    }

    /// Delivers a batch of concurrent floods into caller-owned inboxes.
    ///
    /// `inboxes` is resized to one entry per vertex and each inbox is
    /// cleared (capacity retained) before delivery — after warm-up the
    /// call performs no heap allocation on the lossless path.
    ///
    /// Semantics match [`FloodEngine::deliver`]: no self-delivery, and the
    /// batch advances `timeslots` by its maximum TTL.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver_into<P: Clone>(
        &mut self,
        floods: &[Flood<P>],
        inboxes: &mut Vec<Vec<Received<P>>>,
    ) {
        let n = self.graph.n();
        if inboxes.len() != n {
            inboxes.resize_with(n, Vec::new);
        }
        for inbox in inboxes.iter_mut() {
            inbox.clear();
        }
        let mut max_ttl = 0;
        for flood in floods {
            assert!(flood.origin < n, "flood origin out of range");
            max_ttl = max_ttl.max(flood.ttl);
            if self.loss_prob > 0.0 {
                self.flood_bfs(flood, inboxes);
            } else {
                self.flood_table(flood, inboxes);
            }
        }
        self.counters.timeslots += max_ttl as u64;
    }

    /// Delivers a batch of concurrent floods **for accounting only**: the
    /// counters advance exactly as in [`FloodEngine::deliver_into`], but
    /// no inboxes are materialized. Use when the protocol phase only
    /// needs the broadcast to have *happened* (weight broadcasts, leader
    /// declarations) — skipping the per-reception pushes removes the
    /// dominant remaining per-round work of those phases.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn broadcast_only<P>(&mut self, floods: &[Flood<P>]) {
        let n = self.graph.n();
        let mut max_ttl = 0;
        for flood in floods {
            assert!(flood.origin < n, "flood origin out of range");
            max_ttl = max_ttl.max(flood.ttl);
            if self.loss_prob > 0.0 {
                self.flood_bfs_counts(flood.origin, flood.ttl);
            } else {
                self.flood_table_counts(flood.origin, flood.ttl);
            }
        }
        self.counters.timeslots += max_ttl as u64;
    }

    /// Counters-only lossless delivery: one table scan, no receptions.
    fn flood_table_counts(&mut self, origin: usize, ttl: usize) {
        if ttl == 0 {
            return;
        }
        let eff = ttl.min(self.graph.n());
        let table = Self::table_for(&mut self.tables, self.graph, eff);
        let ball = table.ball(origin);
        self.counters.transmissions += 1;
        self.counters.per_vertex_tx[origin] += 1;
        self.counters.delivered += ball.len() as u64;
        // Entries are distance-sorted: members before the TTL boundary
        // relay exactly once each.
        let relays = ball.partition_point(|&(_, d)| (d as usize) < ttl);
        self.counters.transmissions += relays as u64;
        for &(v, _) in &ball[..relays] {
            self.counters.per_vertex_tx[v as usize] += 1;
        }
    }

    /// Counters-only lossy delivery: the BFS wave of `flood_bfs` minus
    /// the reception pushes (loss draws consume the same RNG stream).
    fn flood_bfs_counts(&mut self, origin: usize, ttl: usize) {
        let graph = self.graph;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.stamp[origin] = epoch;
        self.dist[origin] = 0;
        self.queue.clear();
        self.queue.push_back(origin);
        while let Some(u) = self.queue.pop_front() {
            if self.dist[u] as usize == ttl {
                continue;
            }
            self.counters.transmissions += 1;
            self.counters.per_vertex_tx[u] += 1;
            if self.loss_prob > 0.0 && self.rng.gen::<f64>() < self.loss_prob {
                continue;
            }
            for &w in graph.neighbors(u) {
                if self.stamp[w] != epoch {
                    self.stamp[w] = epoch;
                    self.dist[w] = self.dist[u] + 1;
                    self.counters.delivered += 1;
                    self.queue.push_back(w);
                }
            }
        }
    }

    /// Returns the cached ball table for `radius`, building it on first
    /// use. An associated function over the `tables` field so callers can
    /// keep disjoint borrows of `counters`.
    fn table_for<'t>(
        tables: &'t mut Vec<Option<Arc<BallTable>>>,
        graph: &Graph,
        radius: usize,
    ) -> &'t BallTable {
        if tables.len() <= radius {
            tables.resize_with(radius + 1, || None);
        }
        tables[radius].get_or_insert_with(|| Arc::new(BallTable::build(graph, radius)))
    }

    /// Adopts another engine's cached ball tables (cheap `Arc` clones),
    /// so two engines over the same graph build each radius only once —
    /// e.g. the Algorithm 2 runner's WB engine and the strategy
    /// decision's engine both flood within `2r+1` hops.
    ///
    /// Tables this engine already holds are kept.
    ///
    /// # Panics
    ///
    /// Panics if the engines deliver over different graphs.
    pub fn adopt_tables(&mut self, other: &FloodEngine<'_>) {
        assert!(
            std::ptr::eq(self.graph, other.graph),
            "engines must share a graph to share tables"
        );
        if self.tables.len() < other.tables.len() {
            self.tables.resize_with(other.tables.len(), || None);
        }
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            if mine.is_none() {
                if let Some(t) = theirs {
                    *mine = Some(Arc::clone(t));
                }
            }
        }
    }

    /// Lossless delivery of one flood from the precomputed ball table.
    ///
    /// In a lossless synchronous flood every vertex holding a copy at
    /// distance `< ttl` relays exactly once (the origin included) and
    /// every ball member receives exactly one copy at its BFS distance, so
    /// the table scan reproduces the BFS wave — receptions in distance
    /// order — without traversing edges.
    fn flood_table<P: Clone>(&mut self, flood: &Flood<P>, inboxes: &mut [Vec<Received<P>>]) {
        if flood.ttl == 0 {
            return; // hold without relaying: no cost, no receptions
        }
        let eff = flood.ttl.min(self.graph.n());
        let table = Self::table_for(&mut self.tables, self.graph, eff);
        // The origin always performs the first broadcast.
        self.counters.transmissions += 1;
        self.counters.per_vertex_tx[flood.origin] += 1;
        for &(v, d) in table.ball(flood.origin) {
            let v = v as usize;
            let d = d as usize;
            inboxes[v].push(Received {
                origin: flood.origin,
                distance: d,
                payload: flood.payload.clone(),
            });
            self.counters.delivered += 1;
            if d < flood.ttl {
                // Holds a copy with TTL budget left: relays once.
                self.counters.transmissions += 1;
                self.counters.per_vertex_tx[v] += 1;
            }
        }
    }

    /// BFS wave for a single flood with per-relay loss, on epoch-stamped
    /// scratch (no allocation after the first call).
    fn flood_bfs<P: Clone>(&mut self, flood: &Flood<P>, inboxes: &mut [Vec<Received<P>>]) {
        let graph = self.graph;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.stamp[flood.origin] = epoch;
        self.dist[flood.origin] = 0;
        self.queue.clear();
        self.queue.push_back(flood.origin);
        while let Some(u) = self.queue.pop_front() {
            if self.dist[u] as usize == flood.ttl {
                continue; // TTL exhausted: hold but don't relay.
            }
            // One wireless broadcast by u (possibly lost as a whole).
            self.counters.transmissions += 1;
            self.counters.per_vertex_tx[u] += 1;
            if self.loss_prob > 0.0 && self.rng.gen::<f64>() < self.loss_prob {
                continue;
            }
            for &w in graph.neighbors(u) {
                if self.stamp[w] != epoch {
                    self.stamp[w] = epoch;
                    self.dist[w] = self.dist[u] + 1;
                    inboxes[w].push(Received {
                        origin: flood.origin,
                        distance: self.dist[w] as usize,
                        payload: flood.payload.clone(),
                    });
                    self.counters.delivered += 1;
                    self.queue.push_back(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn flood_reaches_exactly_the_ttl_ball() {
        let g = topology::line(7);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 3,
            ttl: 2,
            payload: (),
        }]);
        for (v, inbox) in inboxes.iter().enumerate() {
            let d = g.hop_distance(3, v).unwrap();
            if v != 3 && d <= 2 {
                assert_eq!(inbox.len(), 1, "vertex {v} should receive");
                assert_eq!(inbox[0].distance, d);
            } else {
                assert!(inbox.is_empty(), "vertex {v} should not receive");
            }
        }
    }

    #[test]
    fn origin_does_not_receive_its_own_flood() {
        let g = topology::ring(4);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 0,
            ttl: 3,
            payload: 42u32,
        }]);
        assert!(inboxes[0].is_empty());
    }

    #[test]
    fn ttl_zero_reaches_nobody_and_costs_nothing() {
        let g = topology::line(3);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 1,
            ttl: 0,
            payload: (),
        }]);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(e.counters().transmissions, 0);
        assert_eq!(e.counters().timeslots, 0);
    }

    #[test]
    fn transmissions_count_relays_within_ttl() {
        // Line 0-1-2-3-4, flood from 0 with ttl 2: relayers are 0 and 1.
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().transmissions, 2);
        assert_eq!(e.counters().per_vertex_tx[0], 1);
        assert_eq!(e.counters().per_vertex_tx[1], 1);
        assert_eq!(e.counters().delivered, 2); // vertices 1 and 2
    }

    #[test]
    fn broadcast_only_matches_deliver_counters() {
        let g = topology::grid(4, 5);
        let floods = [
            Flood {
                origin: 0,
                ttl: 3,
                payload: (),
            },
            Flood {
                origin: 19,
                ttl: 2,
                payload: (),
            },
            Flood {
                origin: 7,
                ttl: 0,
                payload: (),
            },
        ];
        let mut full = FloodEngine::new(&g);
        let _ = full.deliver(&floods);
        let mut counting = FloodEngine::new(&g);
        counting.broadcast_only(&floods);
        assert_eq!(full.counters(), counting.counters());

        // Lossy path: identical seeds consume identical RNG streams, so
        // the counters agree too.
        let mut full = FloodEngine::with_loss(&g, 0.3, 11);
        let _ = full.deliver(&floods);
        let mut counting = FloodEngine::with_loss(&g, 0.3, 11);
        counting.broadcast_only(&floods);
        assert_eq!(full.counters(), counting.counters());
    }

    #[test]
    fn adopted_tables_are_shared_and_equivalent() {
        let g = topology::grid(4, 4);
        let mut a = FloodEngine::new(&g);
        a.prewarm(3);
        let mut b = FloodEngine::new(&g);
        b.adopt_tables(&a);
        assert!(
            b.tables[3]
                .as_ref()
                .is_some_and(|t| std::sync::Arc::ptr_eq(t, a.tables[3].as_ref().unwrap())),
            "adopted table must be the same allocation"
        );
        let floods = [Flood {
            origin: 5,
            ttl: 3,
            payload: (),
        }];
        assert_eq!(a.deliver(&floods), b.deliver(&floods));
    }

    #[test]
    #[should_panic(expected = "share a graph")]
    fn adopting_across_graphs_panics() {
        let g1 = topology::line(4);
        let g2 = topology::line(4);
        let a = FloodEngine::new(&g1);
        let mut b = FloodEngine::new(&g2);
        b.adopt_tables(&a);
    }

    #[test]
    fn batch_timeslots_use_max_ttl() {
        let g = topology::line(6);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[
            Flood {
                origin: 0,
                ttl: 1,
                payload: (),
            },
            Flood {
                origin: 5,
                ttl: 4,
                payload: (),
            },
        ]);
        assert_eq!(e.counters().timeslots, 4);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().timeslots, 6);
    }

    #[test]
    fn concurrent_floods_have_independent_inboxes() {
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[
            Flood {
                origin: 0,
                ttl: 4,
                payload: "a",
            },
            Flood {
                origin: 4,
                ttl: 4,
                payload: "b",
            },
        ]);
        assert_eq!(inboxes[2].len(), 2);
        let mut payloads: Vec<&str> = inboxes[2].iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec!["a", "b"]);
    }

    #[test]
    fn deliver_into_reuses_and_matches_deliver() {
        let g = topology::grid(4, 4);
        let floods = [
            Flood {
                origin: 0,
                ttl: 3,
                payload: 1u32,
            },
            Flood {
                origin: 15,
                ttl: 2,
                payload: 2u32,
            },
        ];
        let mut fresh = FloodEngine::new(&g);
        let expect = fresh.deliver(&floods);
        let mut reused = FloodEngine::new(&g);
        let mut inboxes = Vec::new();
        for _ in 0..3 {
            reused.deliver_into(&floods, &mut inboxes);
            assert_eq!(inboxes, expect);
        }
        // Counters accumulate linearly across identical deliveries.
        assert_eq!(
            reused.counters().transmissions,
            3 * fresh.counters().transmissions
        );
        assert_eq!(reused.counters().delivered, 3 * fresh.counters().delivered);
    }

    #[test]
    fn huge_ttl_is_clamped_not_allocated() {
        let g = topology::line(4);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 0,
            ttl: usize::MAX,
            payload: (),
        }]);
        assert!(inboxes[1..].iter().all(|b| b.len() == 1));
        // Only the saturated table exists (radius ≤ n).
        assert!(e.tables.len() <= g.n() + 1);
    }

    #[test]
    fn lossy_path_matches_lossless_when_no_drop_fires() {
        // loss_prob tiny enough that no draw fires in this run: the BFS
        // path must agree with the table path exactly.
        let g = topology::grid(3, 5);
        let floods = [Flood {
            origin: 7,
            ttl: 3,
            payload: (),
        }];
        let mut lossless = FloodEngine::new(&g);
        let a = lossless.deliver(&floods);
        let mut nearly = FloodEngine::with_loss(&g, 1e-12, 5);
        let b = nearly.deliver(&floods);
        assert_eq!(a, b);
        assert_eq!(
            lossless.counters().transmissions,
            nearly.counters().transmissions
        );
    }

    #[test]
    fn total_loss_blocks_beyond_first_hop_never_the_math() {
        // loss = 0.999…: with a seeded RNG, eventually every relay drops;
        // here we use a high but valid probability and just assert safety
        // properties (no panic, inbox subset of the lossless run).
        let g = topology::line(6);
        let mut lossless = FloodEngine::new(&g);
        let full = lossless.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        let mut lossy = FloodEngine::with_loss(&g, 0.9, 7);
        let some = lossy.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        for v in 0..6 {
            assert!(some[v].len() <= full[v].len());
        }
    }

    #[test]
    fn lossy_delivery_is_reproducible_per_seed() {
        let g = topology::grid(4, 4);
        let run = |seed| {
            let mut e = FloodEngine::with_loss(&g, 0.3, seed);
            let boxes = e.deliver(&[Flood {
                origin: 0,
                ttl: 6,
                payload: (),
            }]);
            boxes.iter().map(|b| b.len()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_origin_panics() {
        let g = topology::line(2);
        let mut e = FloodEngine::new(&g);
        let _ = e.deliver(&[Flood {
            origin: 9,
            ttl: 1,
            payload: (),
        }]);
    }
}
