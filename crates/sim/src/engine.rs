//! TTL-limited flood delivery.

use crate::counters::Counters;
use mhca_graph::Graph;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;

/// A hop-limited local broadcast: `payload` floods from `origin` to every
/// vertex within `ttl` hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flood<P> {
    /// Originating vertex.
    pub origin: usize,
    /// Maximum hop count the flood travels.
    pub ttl: usize,
    /// Message content.
    pub payload: P,
}

/// A message copy received by some vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<P> {
    /// The flood's originating vertex.
    pub origin: usize,
    /// Hop distance the copy travelled.
    pub distance: usize,
    /// Message content.
    pub payload: P,
}

/// Synchronous flood-delivery engine over a fixed graph.
///
/// Delivery is deterministic unless a loss model is installed with
/// [`FloodEngine::with_loss`]; loss draws come from a seeded RNG so even
/// failure-injection runs are reproducible.
#[derive(Debug)]
pub struct FloodEngine<'g> {
    graph: &'g Graph,
    counters: Counters,
    loss_prob: f64,
    rng: StdRng,
}

impl<'g> FloodEngine<'g> {
    /// Engine with perfect (lossless) delivery.
    pub fn new(graph: &'g Graph) -> Self {
        FloodEngine {
            graph,
            counters: Counters::new(graph.n()),
            loss_prob: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Engine that drops each relay broadcast independently with
    /// probability `loss_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob ∉ [0, 1)`.
    pub fn with_loss(graph: &'g Graph, loss_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        FloodEngine {
            graph,
            counters: Counters::new(graph.n()),
            loss_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Accumulated communication counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the counters (e.g. between protocol phases).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Delivers a batch of concurrent floods.
    ///
    /// Returns one inbox per vertex. A vertex does **not** receive its own
    /// flood. Within one batch all floods propagate concurrently, so the
    /// pipelined time charge is the maximum TTL in the batch.
    ///
    /// # Panics
    ///
    /// Panics if a flood origin is out of range.
    pub fn deliver<P: Clone>(&mut self, floods: &[Flood<P>]) -> Vec<Vec<Received<P>>> {
        let n = self.graph.n();
        let mut inboxes: Vec<Vec<Received<P>>> = vec![Vec::new(); n];
        let mut max_ttl = 0;
        for flood in floods {
            assert!(flood.origin < n, "flood origin out of range");
            max_ttl = max_ttl.max(flood.ttl);
            self.flood_one(flood, &mut inboxes);
        }
        self.counters.timeslots += max_ttl as u64;
        inboxes
    }

    /// BFS wave for a single flood, with per-relay loss.
    fn flood_one<P: Clone>(&mut self, flood: &Flood<P>, inboxes: &mut [Vec<Received<P>>]) {
        let n = self.graph.n();
        let mut dist = vec![usize::MAX; n];
        dist[flood.origin] = 0;
        // Queue holds vertices that hold a copy and may relay.
        let mut queue = VecDeque::from([flood.origin]);
        while let Some(u) = queue.pop_front() {
            if dist[u] == flood.ttl {
                continue; // TTL exhausted: hold but don't relay.
            }
            // One wireless broadcast by u (possibly lost as a whole).
            self.counters.transmissions += 1;
            self.counters.per_vertex_tx[u] += 1;
            if self.loss_prob > 0.0 && self.rng.gen::<f64>() < self.loss_prob {
                continue;
            }
            for &w in self.graph.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    inboxes[w].push(Received {
                        origin: flood.origin,
                        distance: dist[w],
                        payload: flood.payload.clone(),
                    });
                    self.counters.delivered += 1;
                    queue.push_back(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn flood_reaches_exactly_the_ttl_ball() {
        let g = topology::line(7);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 3,
            ttl: 2,
            payload: (),
        }]);
        for (v, inbox) in inboxes.iter().enumerate() {
            let d = g.hop_distance(3, v).unwrap();
            if v != 3 && d <= 2 {
                assert_eq!(inbox.len(), 1, "vertex {v} should receive");
                assert_eq!(inbox[0].distance, d);
            } else {
                assert!(inbox.is_empty(), "vertex {v} should not receive");
            }
        }
    }

    #[test]
    fn origin_does_not_receive_its_own_flood() {
        let g = topology::ring(4);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 0,
            ttl: 3,
            payload: 42u32,
        }]);
        assert!(inboxes[0].is_empty());
    }

    #[test]
    fn ttl_zero_reaches_nobody_and_costs_nothing() {
        let g = topology::line(3);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood {
            origin: 1,
            ttl: 0,
            payload: (),
        }]);
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(e.counters().transmissions, 0);
        assert_eq!(e.counters().timeslots, 0);
    }

    #[test]
    fn transmissions_count_relays_within_ttl() {
        // Line 0-1-2-3-4, flood from 0 with ttl 2: relayers are 0 and 1.
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().transmissions, 2);
        assert_eq!(e.counters().per_vertex_tx[0], 1);
        assert_eq!(e.counters().per_vertex_tx[1], 1);
        assert_eq!(e.counters().delivered, 2); // vertices 1 and 2
    }

    #[test]
    fn batch_timeslots_use_max_ttl() {
        let g = topology::line(6);
        let mut e = FloodEngine::new(&g);
        e.deliver(&[
            Flood {
                origin: 0,
                ttl: 1,
                payload: (),
            },
            Flood {
                origin: 5,
                ttl: 4,
                payload: (),
            },
        ]);
        assert_eq!(e.counters().timeslots, 4);
        e.deliver(&[Flood {
            origin: 0,
            ttl: 2,
            payload: (),
        }]);
        assert_eq!(e.counters().timeslots, 6);
    }

    #[test]
    fn concurrent_floods_have_independent_inboxes() {
        let g = topology::line(5);
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[
            Flood {
                origin: 0,
                ttl: 4,
                payload: "a",
            },
            Flood {
                origin: 4,
                ttl: 4,
                payload: "b",
            },
        ]);
        assert_eq!(inboxes[2].len(), 2);
        let mut payloads: Vec<&str> = inboxes[2].iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec!["a", "b"]);
    }

    #[test]
    fn total_loss_blocks_beyond_first_hop_never_the_math() {
        // loss = 0.999…: with a seeded RNG, eventually every relay drops;
        // here we use a high but valid probability and just assert safety
        // properties (no panic, inbox subset of the lossless run).
        let g = topology::line(6);
        let mut lossless = FloodEngine::new(&g);
        let full = lossless.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        let mut lossy = FloodEngine::with_loss(&g, 0.9, 7);
        let some = lossy.deliver(&[Flood {
            origin: 0,
            ttl: 5,
            payload: (),
        }]);
        for v in 0..6 {
            assert!(some[v].len() <= full[v].len());
        }
    }

    #[test]
    fn lossy_delivery_is_reproducible_per_seed() {
        let g = topology::grid(4, 4);
        let run = |seed| {
            let mut e = FloodEngine::with_loss(&g, 0.3, seed);
            let boxes = e.deliver(&[Flood {
                origin: 0,
                ttl: 6,
                payload: (),
            }]);
            boxes
                .iter()
                .map(|b| b.len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_origin_panics() {
        let g = topology::line(2);
        let mut e = FloodEngine::new(&g);
        let _ = e.deliver(&[Flood {
            origin: 9,
            ttl: 1,
            payload: (),
        }]);
    }
}
