//! Synchronous message-passing simulation substrate.
//!
//! The distributed protocol of the paper (Algorithm 2/3) communicates only
//! through **hop-limited local broadcasts** on the extended conflict graph:
//! weight broadcasts within `(2r+1)` hops, LocalLeader declarations within
//! `(2r+1)` hops, and status determinations within `(3r+1)` hops
//! (Section IV-C, Fig. 2). This crate simulates exactly that primitive:
//!
//! * [`FloodEngine`] delivers batches of TTL-limited floods over a graph,
//!   with optional per-transmission message loss for failure-injection
//!   tests.
//! * [`Counters`] records transmissions, delivered copies, and pipelined
//!   mini-timeslots, so the paper's communication-complexity claims
//!   (`O(r² + D)` messages per vertex per round) can be *measured* rather
//!   than assumed — see the `complexity` bench.
//!
//! The engine is deliberately transport-only: protocol state machines (the
//! Candidate/LocalLeader/Winner/Loser logic) live in `mhca-core`, and are
//! restricted to information received through [`FloodEngine::deliver`],
//! preserving the locality the paper's distributed claims rest on.
//!
//! # Example
//!
//! ```
//! use mhca_graph::topology;
//! use mhca_sim::{Flood, FloodEngine};
//!
//! let g = topology::line(5);
//! let mut engine = FloodEngine::new(&g);
//! let inboxes = engine.deliver(&[Flood { origin: 0, ttl: 2, payload: "hi" }]);
//! // Vertices within 2 hops hear the flood; vertex 0 itself does not
//! // receive its own message.
//! assert!(inboxes[1].iter().any(|r| r.payload == "hi"));
//! assert!(inboxes[2].iter().any(|r| r.payload == "hi"));
//! assert!(inboxes[3].is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod counters;
pub mod engine;
pub mod loss;

pub use counters::Counters;
pub use engine::{Flood, FloodEngine, LossSpec, Received, DEFAULT_TABLE_ENTRY_CAP};
pub use loss::SkipSampler;
