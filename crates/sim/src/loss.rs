//! Order-independent per-flood loss sampling.
//!
//! The legacy lossy path drew one `StdRng` sample per relay broadcast from
//! a single engine-wide stream, which had two scaling problems. First,
//! **cost**: at long horizons the per-reception draws dominate lossy
//! scenarios. Second, **coupling**: every flood's realization depended on
//! how many draws all *earlier* floods consumed, so no two floods could be
//! sampled independently (and batched sampling could never be pinned
//! byte-identical to per-reception sampling).
//!
//! [`SkipSampler`] fixes both with counter-based geometric skip-sampling.
//! Each flood `f` owns a private drop stream derived by hashing
//! `(seed, f, draw_index)` (a SplitMix64-style finalizer — the same
//! counter-based construction the channel matrix uses for paired
//! comparisons). Instead of one Bernoulli draw per relay, the sampler
//! draws the *gap to the next dropped relay* — geometric with parameter
//! `p` — so a flood with `k` drops costs `k + 1` hashes **however many
//! relays it has**. Because the gap sequence is a pure function of
//! `(seed, flood, draw_index)`:
//!
//! * per-relay queries ([`SkipSampler::should_drop`]) and batch
//!   materialization ([`SkipSampler::fill_drops`]) are byte-identical by
//!   construction, and
//! * a flood's realization is independent of every other flood — floods
//!   can be sampled in any order, on any tile, with identical results.
//!
//! The price is a one-time stream change: lossy realizations differ from
//! the pre-skip-sampling releases (same distribution, different draws).
//! BENCHMARKS.md ("Large-N") records the change.

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl increment of SplitMix64 (odd, so every counter maps to a distinct
/// pre-mix state).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Uniform value in the open interval `(0, 1)` for draw `k` of flood `f`.
#[inline]
fn unit(seed: u64, flood: u64, draw: u64) -> f64 {
    let x = mix(seed
        .wrapping_add(flood.wrapping_mul(GOLDEN))
        .wrapping_add(mix(draw.wrapping_mul(GOLDEN))));
    // 53 mantissa bits, offset by half an ulp so 0 is unreachable (ln(0)
    // would be -inf) and 1 is unreachable too.
    ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Counter-based geometric skip-sampler over one engine's relay stream.
///
/// Relays of flood `f` are indexed `0, 1, 2, …` in delivery order; relay
/// `i` is dropped iff `i` appears in the flood's drop sequence. The
/// sequence is generated lazily, one geometric gap per drop.
///
/// # Example
///
/// ```
/// use mhca_sim::SkipSampler;
///
/// let mut s = SkipSampler::new(0.25, 7);
/// s.begin_flood();
/// let stream: Vec<bool> = (0..100).map(|_| s.should_drop()).collect();
/// // Batch materialization of the same flood is byte-identical.
/// let mut t = SkipSampler::new(0.25, 7);
/// t.begin_flood();
/// let mut drops = Vec::new();
/// t.fill_drops(100, &mut drops);
/// let batch: Vec<bool> = (0..100).map(|i| drops.contains(&(i as u64))).collect();
/// assert_eq!(stream, batch);
/// ```
#[derive(Debug, Clone)]
pub struct SkipSampler {
    prob: f64,
    seed: u64,
    /// `ln(1 - prob)`; negative and finite for `prob ∈ (0, 1)`.
    ln_q: f64,
    /// Index of the current flood (pre-incremented by
    /// [`SkipSampler::begin_flood`], so the first flood is `1`).
    flood: u64,
    /// Next relay index of the current flood.
    relay: u64,
    /// Relay index of the current flood's next drop.
    next_drop: u64,
    /// Gaps drawn so far for the current flood.
    draws: u64,
}

impl SkipSampler {
    /// Sampler dropping each relay independently with probability `prob`,
    /// streams keyed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `prob ∉ [0, 1)`.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&prob),
            "loss probability must be in [0, 1)"
        );
        SkipSampler {
            prob,
            seed,
            ln_q: (1.0 - prob).ln(),
            flood: 0,
            relay: 0,
            next_drop: u64::MAX,
            draws: 0,
        }
    }

    /// The drop probability.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Index of the current flood — the sampler's stream position.
    /// `0` until the first [`SkipSampler::begin_flood`].
    pub fn flood_index(&self) -> u64 {
        self.flood
    }

    /// Repositions the stream so the next [`SkipSampler::begin_flood`]
    /// starts flood `flood + 1` — checkpoint restore. Because each
    /// flood's drop realization is a pure function of `(seed, flood)`,
    /// restoring the flood index between floods reproduces the remaining
    /// stream exactly; per-flood progress is reset, so this must not be
    /// called while a flood's relays are still being queried.
    pub fn set_flood_index(&mut self, flood: u64) {
        self.flood = flood;
        self.relay = 0;
        self.draws = 0;
        self.next_drop = u64::MAX;
    }

    /// Geometric gap (failures before the next success) for draw `k` of
    /// the current flood: `floor(ln(u) / ln(1 - p))`.
    #[inline]
    fn gap(&self, k: u64) -> u64 {
        if self.prob <= 0.0 {
            return u64::MAX;
        }
        let g = unit(self.seed, self.flood, k).ln() / self.ln_q;
        // `as` saturates, so gaps beyond any real relay count are fine.
        g as u64
    }

    /// Starts the next flood's drop stream. Must be called once per flood
    /// before its relay queries; floods are numbered by call order, so an
    /// engine replaying the same flood sequence reproduces the same
    /// drops regardless of how each flood was queried.
    pub fn begin_flood(&mut self) {
        self.flood += 1;
        self.relay = 0;
        self.draws = 1;
        self.next_drop = self.gap(0);
    }

    /// Whether the current flood's next relay (in delivery order) is
    /// dropped; advances the relay index. Amortized O(1): one hash per
    /// *drop*, none per surviving relay.
    #[inline]
    pub fn should_drop(&mut self) -> bool {
        let i = self.relay;
        self.relay += 1;
        if i < self.next_drop {
            return false;
        }
        debug_assert_eq!(i, self.next_drop);
        let k = self.draws;
        self.draws += 1;
        self.next_drop = i.saturating_add(1).saturating_add(self.gap(k));
        true
    }

    /// Batch form: appends to `out` every dropped relay index `< len` of
    /// the current flood, ascending, leaving the sampler positioned at
    /// relay `len` (so mixing batch and per-relay queries stays
    /// consistent). Byte-identical to `len` successive
    /// [`SkipSampler::should_drop`] calls by construction.
    pub fn fill_drops(&mut self, len: u64, out: &mut Vec<u64>) {
        while self.next_drop < len {
            out.push(self.next_drop);
            let i = self.next_drop;
            let k = self.draws;
            self.draws += 1;
            self.next_drop = i.saturating_add(1).saturating_add(self.gap(k));
        }
        self.relay = self.relay.max(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_relay_and_batch_sampling_are_byte_identical() {
        for seed in 0..20u64 {
            for &prob in &[0.05, 0.3, 0.7, 0.95] {
                for len in [0u64, 1, 17, 400] {
                    let mut per = SkipSampler::new(prob, seed);
                    let mut bat = SkipSampler::new(prob, seed);
                    // Several floods so non-first flood streams are covered.
                    for flood in 0..3 {
                        per.begin_flood();
                        bat.begin_flood();
                        let stream: Vec<u64> = (0..len).filter(|_| per.should_drop()).collect();
                        let mut batch = Vec::new();
                        bat.fill_drops(len, &mut batch);
                        assert_eq!(
                            stream, batch,
                            "seed {seed} prob {prob} len {len} flood {flood}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn floods_are_order_independent() {
        // Flood 3's realization must not depend on how floods 1–2 were
        // queried (or whether they were queried at all).
        let observe_flood_3 = |spent_relays: &[u64]| {
            let mut s = SkipSampler::new(0.4, 99);
            for &spent in spent_relays {
                s.begin_flood();
                for _ in 0..spent {
                    let _ = s.should_drop();
                }
            }
            s.begin_flood();
            let mut drops = Vec::new();
            s.fill_drops(200, &mut drops);
            drops
        };
        let a = observe_flood_3(&[0, 0]);
        let b = observe_flood_3(&[1000, 3]);
        let c = observe_flood_3(&[17, 170]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_empty(), "p=0.4 over 200 relays must drop something");
    }

    #[test]
    fn empirical_drop_rate_matches_probability() {
        for &prob in &[0.1, 0.5, 0.9] {
            let mut s = SkipSampler::new(prob, 1234);
            let mut drops = 0u64;
            let total = 200_000u64;
            s.begin_flood();
            for _ in 0..total {
                drops += u64::from(s.should_drop());
            }
            let rate = drops as f64 / total as f64;
            assert!(
                (rate - prob).abs() < 0.01,
                "prob {prob}: empirical rate {rate}"
            );
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut s = SkipSampler::new(0.0, 5);
        for _ in 0..3 {
            s.begin_flood();
            for _ in 0..1000 {
                assert!(!s.should_drop());
            }
        }
    }

    #[test]
    fn distinct_seeds_and_floods_give_distinct_streams() {
        let drops = |seed: u64, floods_before: u64| {
            let mut s = SkipSampler::new(0.5, seed);
            for _ in 0..=floods_before {
                s.begin_flood();
            }
            let mut out = Vec::new();
            s.fill_drops(64, &mut out);
            out
        };
        assert_ne!(drops(1, 0), drops(2, 0), "seeds must decorrelate");
        assert_ne!(drops(1, 0), drops(1, 1), "floods must decorrelate");
    }
}
