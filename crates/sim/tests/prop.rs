//! Property-based tests for the flooding engine.

use mhca_graph::Graph;
use mhca_sim::{Flood, FloodEngine};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |edges| {
            let mut g = Graph::builder(n);
            for (u, v) in edges {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            g.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flood_reach_equals_bfs_ball(g in arb_graph(20), ttl in 0usize..6) {
        let origin = 0;
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&[Flood { origin, ttl, payload: () }]);
        let dist = g.bfs_distances(origin);
        for v in 0..g.n() {
            let should_receive = v != origin && dist[v].is_some_and(|d| d <= ttl);
            prop_assert_eq!(!inboxes[v].is_empty(), should_receive, "v={}", v);
            if let Some(r) = inboxes[v].first() {
                prop_assert_eq!(Some(r.distance), dist[v]);
                prop_assert_eq!(r.origin, origin);
            }
        }
    }

    #[test]
    fn transmissions_equal_relaying_vertices(g in arb_graph(16), ttl in 1usize..5) {
        // Relays = vertices at distance < ttl from the origin (they hold a
        // copy and forward it); the origin always relays.
        let origin = 0;
        let mut e = FloodEngine::new(&g);
        let _ = e.deliver(&[Flood { origin, ttl, payload: () }]);
        let dist = g.bfs_distances(origin);
        let expected: u64 = (0..g.n())
            .filter(|&v| dist[v].is_some_and(|d| d < ttl))
            .count() as u64;
        prop_assert_eq!(e.counters().transmissions, expected);
    }

    #[test]
    fn delivered_counts_match_inbox_sizes(g in arb_graph(16), k in 1usize..4) {
        let floods: Vec<Flood<u32>> = (0..k.min(g.n()))
            .map(|i| Flood { origin: i, ttl: 2, payload: i as u32 })
            .collect();
        let mut e = FloodEngine::new(&g);
        let inboxes = e.deliver(&floods);
        let total: u64 = inboxes.iter().map(|b| b.len() as u64).sum();
        prop_assert_eq!(e.counters().delivered, total);
    }

    #[test]
    fn loss_only_shrinks_reach(g in arb_graph(16), p in 0.0f64..0.9, seed in any::<u64>()) {
        let mut lossless = FloodEngine::new(&g);
        let full = lossless.deliver(&[Flood { origin: 0, ttl: 4, payload: () }]);
        let mut lossy = FloodEngine::with_loss(&g, p, seed);
        let some = lossy.deliver(&[Flood { origin: 0, ttl: 4, payload: () }]);
        for v in 0..g.n() {
            prop_assert!(some[v].len() <= full[v].len());
        }
    }
}
