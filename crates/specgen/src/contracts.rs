//! One auto-derived contract per spec-taking entry point.
//!
//! A [`Contract`] pairs a strategy over [`ScenarioSpec`]s with a check
//! that must hold for *every* spec the strategy can produce. All
//! contracts are uniform over `ScenarioSpec` — even when the property
//! only concerns a sub-component (a network, a queue engine) — so a
//! failure always reports one shrunk minimal scenario document plus a
//! replayable choice vector, regardless of which layer broke.
//!
//! The inventory (see `docs/TESTING.md` for the prose version):
//!
//! | contract | entry point(s) under test |
//! |---|---|
//! | `spec_json_roundtrip` | `ScenarioSpec::to_json` / `scenarios_from_str` |
//! | `network_from_spec` | `Network::from_spec` |
//! | `run_experiment_deterministic` | `run_experiment` via `ScenarioSpec::run_job` |
//! | `decide_parity` | `DistributedPtas::decide_into` vs `decide_into_rescan` |
//! | `partition_parity` | tiled `decide_into` vs serial vs rescan |
//! | `campaign_worker_parity` | `runner::run` serial vs bounded vs parallel |
//! | `policy_runner_snapshot` | `PolicyRunner::snapshot` / `restore` |
//! | `traffic_lindley` | `QueueEngine` arrival/delivery/backlog conservation |
//! | `traffic_service_resume` | `ServiceExecutor::run_seed` checkpoint/resume |

use crate::gen::{arb_observers, arb_policy_run_config, arb_traffic_spec, ArbSpec, SpecKnobs};
use crate::support;
use mhca_campaign::runner::{self, CampaignConfig};
use mhca_campaign::{scenarios_from_str, ExperimentKind, ScenarioSpec, SeedRange, ServiceExecutor};
use mhca_core::experiments::PolicyRunConfig;
use mhca_core::{
    Algorithm2Config, DecisionOutcome, DistributedPtas, DistributedPtasConfig, Network,
    ObserverSet, PolicyRunner, QueueEngine,
};
use mhca_service::Executor;
use mhca_telemetry::Telemetry;
use proptest::strategy::{BoxedStrategy, Just, Strategy};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A property harness over generated scenario specs: every spec the
/// strategy yields must pass the check.
pub struct Contract {
    /// Unique snake_case name — also the `#[test]` name the
    /// [`crate::harness!`] macro derives and the counterexample file stem.
    pub name: &'static str,
    /// One-line statement of the property.
    pub doc: &'static str,
    /// Knobs the strategy is evaluated with.
    pub knobs: SpecKnobs,
    /// Strategy over scenarios this contract applies to.
    pub strategy: fn(&SpecKnobs) -> BoxedStrategy<ScenarioSpec>,
    /// The property. `Err`/panic both count as failures and trigger
    /// shrinking.
    pub check: fn(&ScenarioSpec) -> Result<(), String>,
    /// Case budget when `MHCA_SPECGEN_CASES` is unset.
    pub default_cases: u32,
}

impl std::fmt::Debug for Contract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Contract")
            .field("name", &self.name)
            .field("default_cases", &self.default_cases)
            .finish()
    }
}

/// The full contract inventory, one entry per spec-taking entry point.
pub fn all() -> Vec<Contract> {
    vec![
        Contract {
            name: "spec_json_roundtrip",
            doc: "to_json → parse returns the identical spec, and re-emission \
                  is byte-identical",
            knobs: SpecKnobs::full(),
            strategy: arb_any_scenario_with_wallclock,
            check: check_spec_json_roundtrip,
            default_cases: 64,
        },
        Contract {
            name: "network_from_spec",
            doc: "Network::from_spec upholds its dimension invariants and is \
                  deterministic in (spec, seed)",
            knobs: SpecKnobs::full(),
            strategy: arb_policy_run_scenario,
            check: check_network_from_spec,
            default_cases: 48,
        },
        Contract {
            name: "run_experiment_deterministic",
            doc: "running any scenario job twice yields byte-identical \
                  artifacts and bit-identical metrics",
            knobs: SpecKnobs::full(),
            strategy: arb_any_scenario,
            check: check_run_experiment_deterministic,
            default_cases: 12,
        },
        Contract {
            name: "decide_parity",
            doc: "decide_into matches decide_into_rescan bit-for-bit on the \
                  generated network, over a decision sequence",
            knobs: SpecKnobs::quick(),
            strategy: arb_policy_run_scenario,
            check: check_decide_parity,
            default_cases: 32,
        },
        Contract {
            name: "partition_parity",
            doc: "tiled decide matches serial and the rescan oracle \
                  bit-for-bit, including scan stats",
            knobs: SpecKnobs::quick(),
            strategy: arb_policy_run_scenario,
            check: check_partition_parity,
            default_cases: 24,
        },
        Contract {
            name: "campaign_worker_parity",
            doc: "serial, bounded (--jobs 2), and parallel campaigns produce \
                  byte-identical artifacts",
            knobs: SpecKnobs::quick(),
            strategy: arb_any_scenario,
            check: check_campaign_worker_parity,
            default_cases: 6,
        },
        Contract {
            name: "policy_runner_snapshot",
            doc: "a mid-run snapshot restored into a fresh runner finishes \
                  identical to the uninterrupted run",
            knobs: SpecKnobs::quick(),
            strategy: arb_policy_run_scenario,
            check: check_policy_runner_snapshot,
            default_cases: 16,
        },
        Contract {
            name: "traffic_lindley",
            doc: "QueueEngine conserves packets at every slot: arrivals − \
                  delivered == backlog",
            knobs: SpecKnobs::quick(),
            strategy: arb_traffic_scenario,
            check: check_traffic_lindley,
            default_cases: 32,
        },
        Contract {
            name: "traffic_service_resume",
            doc: "a service seed interrupted at a checkpoint resumes to the \
                  byte-identical artifact, traffic state included",
            knobs: SpecKnobs::quick(),
            strategy: arb_traffic_scenario,
            check: check_traffic_service_resume,
            default_cases: 8,
        },
    ]
}

/// A deliberately broken `decide_parity` twin: the reference outcome is
/// perturbed before comparison, so every generated spec fails. Exists to
/// prove the harness reports a shrunk minimal scenario plus a
/// deterministic replay when a real contract violation appears.
#[doc(hidden)]
pub fn tampered_decide_parity() -> Contract {
    Contract {
        name: "decide_parity_tampered",
        doc: "meta-contract: decide_parity with a perturbed reference \
              outcome (must always fail)",
        knobs: SpecKnobs::quick(),
        strategy: arb_policy_run_scenario,
        check: check_decide_parity_tampered,
        default_cases: 8,
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_any_scenario(knobs: &SpecKnobs) -> BoxedStrategy<ScenarioSpec> {
    ScenarioSpec::arb_spec(knobs)
}

/// The widest space: every kind, every observer including the wall-clock
/// `decide-timing` — legal here because serialization never runs anything.
fn arb_any_scenario_with_wallclock(knobs: &SpecKnobs) -> BoxedStrategy<ScenarioSpec> {
    (
        ExperimentKind::arb_spec(knobs),
        SeedRange::arb_spec(knobs),
        arb_observers(knobs, true),
    )
        .prop_map(|(kind, seeds, observers)| {
            ScenarioSpec::new("gen", "generated scenario", kind, seeds).with_observers(observers)
        })
        .boxed()
}

/// Policy-run scenarios only — the kind whose config feeds
/// `Network::from_spec`, the decide engines, and `PolicyRunner` directly.
fn arb_policy_run_scenario(knobs: &SpecKnobs) -> BoxedStrategy<ScenarioSpec> {
    (
        arb_policy_run_config(knobs),
        SeedRange::arb_spec(knobs),
        crate::gen::arb_deterministic_observers(knobs),
    )
        .prop_map(|(cfg, seeds, observers)| {
            ScenarioSpec::new(
                "gen",
                "generated policy run",
                ExperimentKind::PolicyRun(cfg),
                seeds,
            )
            .with_observers(observers)
        })
        .boxed()
}

/// Policy-run scenarios that always carry a traffic workload.
fn arb_traffic_scenario(knobs: &SpecKnobs) -> BoxedStrategy<ScenarioSpec> {
    (
        arb_policy_run_config(knobs).prop_flat_map(|cfg| {
            let n = cfg.n;
            (Just(cfg), arb_traffic_spec(n))
        }),
        SeedRange::arb_spec(knobs),
        crate::gen::arb_deterministic_observers(knobs),
    )
        .prop_map(|((mut cfg, traffic), seeds, observers)| {
            cfg.traffic = Some(traffic);
            ScenarioSpec::new(
                "gen",
                "generated traffic run",
                ExperimentKind::PolicyRun(cfg),
                seeds,
            )
            .with_observers(observers)
        })
        .boxed()
}

/// Extracts the policy-run config from a scenario the policy-run
/// strategies produced.
fn policy_run_of(spec: &ScenarioSpec) -> Result<&PolicyRunConfig, String> {
    match &spec.kind {
        ExperimentKind::PolicyRun(cfg) => Ok(cfg),
        other => Err(format!("contract expects a policy-run spec, got {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

fn check_spec_json_roundtrip(spec: &ScenarioSpec) -> Result<(), String> {
    let text = spec.to_json().to_string_pretty();
    let parsed =
        scenarios_from_str(&text).map_err(|e| format!("ingest rejected shown spec: {e}"))?;
    if parsed.len() != 1 || parsed[0] != *spec {
        return Err(format!(
            "parse(show(spec)) != spec:\nshown:  {spec:?}\nparsed: {parsed:?}"
        ));
    }
    let reemitted = parsed[0].to_json().to_string_pretty();
    if reemitted != text {
        return Err(format!(
            "re-emission is not byte-identical:\nfirst:\n{text}\nsecond:\n{reemitted}"
        ));
    }
    Ok(())
}

fn check_network_from_spec(spec: &ScenarioSpec) -> Result<(), String> {
    let cfg = policy_run_of(spec)?;
    for seed in spec.seeds.iter() {
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        if net.n_nodes() != cfg.n || net.n_channels() != cfg.m {
            return Err(format!(
                "dimension mismatch: asked ({}, {}), got ({}, {})",
                cfg.n,
                cfg.m,
                net.n_nodes(),
                net.n_channels()
            ));
        }
        if net.n_vertices() != cfg.n * cfg.m || net.h().n_vertices() != cfg.n * cfg.m {
            return Err(format!(
                "H must have n·m = {} vertices, got {}",
                cfg.n * cfg.m,
                net.n_vertices()
            ));
        }
        if net.g().n() != cfg.n {
            return Err(format!(
                "G must have n = {} vertices, got {}",
                cfg.n,
                net.g().n()
            ));
        }
        // Determinism: an identical rebuild is indistinguishable — same
        // conflict structure, same channel means.
        let again = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        if format!("{:?}", net.g()) != format!("{:?}", again.g()) {
            return Err(format!("seed {seed}: rebuild changed the conflict graph"));
        }
        let (a, b) = (net.channels().means(), again.channels().means());
        if a.len() != b.len() || a.iter().zip(&b).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return Err(format!("seed {seed}: rebuild changed the channel means"));
        }
    }
    Ok(())
}

fn check_run_experiment_deterministic(spec: &ScenarioSpec) -> Result<(), String> {
    for seed in spec.seeds.iter() {
        let mut artifact_a = Vec::new();
        let metrics_a = spec
            .run_job(seed, &mut artifact_a)
            .map_err(|e| format!("seed {seed}: first run failed: {e}"))?;
        let mut artifact_b = Vec::new();
        let metrics_b = spec
            .run_job(seed, &mut artifact_b)
            .map_err(|e| format!("seed {seed}: second run failed: {e}"))?;
        if artifact_a != artifact_b {
            return Err(format!("seed {seed}: artifacts differ across reruns"));
        }
        if metrics_a.len() != metrics_b.len()
            || metrics_a
                .iter()
                .zip(&metrics_b)
                .any(|((ka, va), (kb, vb))| ka != kb || va.to_bits() != vb.to_bits())
        {
            return Err(format!(
                "seed {seed}: metrics differ across reruns:\n{metrics_a:?}\n{metrics_b:?}"
            ));
        }
    }
    Ok(())
}

/// Shared decide-parity body; `tamper` perturbs the reference outcome so
/// the comparison must fail (the harness meta-test).
fn decide_parity_impl(spec: &ScenarioSpec, tamper: bool) -> Result<(), String> {
    let cfg = policy_run_of(spec)?;
    let seed = spec.seeds.start;
    let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds))
        .with_loss_spec(cfg.loss);
    if !tamper {
        support::assert_parity_sequence(net.h(), dcfg, seed, 2, "generated spec");
        return Ok(());
    }
    let mut incremental = DistributedPtas::new(net.h(), dcfg);
    let mut reference = DistributedPtas::new(net.h(), dcfg);
    let mut got = DecisionOutcome::default();
    let mut expect = DecisionOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let w = support::random_weights(net.h(), &mut rng);
    incremental.decide_into(&w, &mut got);
    reference.decide_into_rescan(&w, &mut expect);
    // The seeded violation: pretend the reference used one more
    // mini-round than it did.
    expect.minirounds_used += 1;
    if got != expect {
        return Err(format!(
            "decide_into disagrees with (perturbed) rescan: {} vs {} minirounds",
            got.minirounds_used, expect.minirounds_used
        ));
    }
    Ok(())
}

fn check_decide_parity(spec: &ScenarioSpec) -> Result<(), String> {
    decide_parity_impl(spec, false)
}

fn check_decide_parity_tampered(spec: &ScenarioSpec) -> Result<(), String> {
    decide_parity_impl(spec, true)
}

fn check_partition_parity(spec: &ScenarioSpec) -> Result<(), String> {
    let cfg = policy_run_of(spec)?;
    let seed = spec.seeds.start;
    let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
    let base = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds))
        .with_loss_spec(cfg.loss);
    // The generated partition count plus the degenerate oversplit case.
    for partitions in [cfg.partitions.max(2), cfg.n + 3] {
        support::assert_tiled_parity_sequence(
            net.h(),
            base,
            partitions,
            0,
            seed,
            2,
            "generated spec",
        );
    }
    Ok(())
}

fn check_campaign_worker_parity(spec: &ScenarioSpec) -> Result<(), String> {
    let scenarios = vec![spec.clone()];
    let dirs = [
        support::tmp_dir("wp-serial"),
        support::tmp_dir("wp-bounded"),
        support::tmp_dir("wp-parallel"),
    ];
    let shapes: [(bool, Option<usize>); 3] = [(false, None), (true, Some(2)), (true, None)];
    let mut outcomes = Vec::new();
    for (dir, (parallel, jobs)) in dirs.iter().zip(shapes) {
        let outcome = runner::run(&support::quiet(CampaignConfig {
            parallel,
            jobs,
            ..CampaignConfig::new("specgen", dir, scenarios.clone())
        }))
        .map_err(|e| format!("campaign failed: {e}"))?;
        outcomes.push(outcome);
    }
    let read = |dir: &std::path::Path, rel: String| {
        std::fs::read_to_string(dir.join(&rel)).map_err(|e| format!("missing {rel}: {e}"))
    };
    let mut result = Ok(());
    'compare: for dir in &dirs[1..] {
        if outcomes[0].summaries != outcomes[1].summaries
            || outcomes[0].summaries != outcomes[2].summaries
        {
            result = Err("aggregate summaries differ across worker shapes".to_string());
            break 'compare;
        }
        let mut rels = vec!["campaign.csv".to_string()];
        for seed in spec.seeds.iter() {
            rels.push(format!("{}/seed{}.csv", spec.name, seed));
        }
        for rel in rels {
            let (a, b) = (read(&dirs[0], rel.clone()), read(dir, rel.clone()));
            match (a, b) {
                (Ok(a), Ok(b)) if a == b => {}
                (Ok(_), Ok(_)) => {
                    result = Err(format!("{rel} differs from the serial campaign"));
                    break 'compare;
                }
                (Err(e), _) | (_, Err(e)) => {
                    result = Err(e);
                    break 'compare;
                }
            }
        }
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    result
}

fn check_policy_runner_snapshot(spec: &ScenarioSpec) -> Result<(), String> {
    let cfg = policy_run_of(spec)?;
    let seed = spec.seeds.start;
    let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds))
        .with_loss_spec(cfg.loss)
        .with_partitions(cfg.partitions);
    let mut acfg = Algorithm2Config::default()
        .with_horizon(cfg.horizon)
        .with_update_period(cfg.update_period)
        .with_decision(dcfg)
        .with_seed(seed);
    if let Some(traffic) = &cfg.traffic {
        acfg = acfg.with_traffic(traffic.clone());
    }

    // Uninterrupted run, snapshotting at the halfway period boundary.
    let mut policy = cfg.policy.build(&net);
    let mut observers = ObserverSet::from_kinds(&spec.observers);
    let mut runner = PolicyRunner::new(&net, &acfg, &observers);
    let half = runner.periods() / 2;
    for _ in 0..half {
        if runner.done() {
            break;
        }
        runner.step_period(policy.as_mut(), &mut observers);
    }
    let snapshot = runner.snapshot(policy.as_ref());
    let observer_snapshot = observers.snapshot_states();
    while !runner.done() {
        runner.step_period(policy.as_mut(), &mut observers);
    }
    let baseline = runner.finish(policy.as_ref());

    // Fresh universe: restore the snapshot, run out, compare.
    let mut policy2 = cfg.policy.build(&net);
    let mut observers2 = ObserverSet::from_kinds(&spec.observers);
    let mut runner2 = PolicyRunner::new(&net, &acfg, &observers2);
    runner2
        .restore(policy2.as_mut(), &snapshot)
        .map_err(|e| format!("restore failed: {e}"))?;
    observers2
        .restore_states(&observer_snapshot)
        .map_err(|e| format!("observer restore failed: {e}"))?;
    while !runner2.done() {
        runner2.step_period(policy2.as_mut(), &mut observers2);
    }
    let resumed = runner2.finish(policy2.as_ref());
    if baseline != resumed {
        return Err(format!(
            "snapshot/restore diverged:\nbaseline: {baseline:?}\nresumed:  {resumed:?}"
        ));
    }
    Ok(())
}

fn check_traffic_lindley(spec: &ScenarioSpec) -> Result<(), String> {
    let cfg = policy_run_of(spec)?;
    let traffic = cfg
        .traffic
        .as_ref()
        .ok_or_else(|| "traffic contract needs a traffic spec".to_string())?;
    let seed = spec.seeds.start;
    let (g, _) = cfg.topology.build(cfg.n, seed);
    let mut q = QueueEngine::new(traffic, &g, cfg.m);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    for slot in 0..cfg.horizon.min(200) {
        q.begin_period();
        // An arbitrary service pattern: random winners at random rates —
        // conservation must hold under *any* service, not just real
        // decide outcomes.
        let mut served: Vec<(usize, f64)> = Vec::new();
        for v in 0..cfg.n {
            if rng.gen_bool(0.5) {
                served.push((v, rng.gen_range(25.0..400.0)));
            }
        }
        q.step_slot(slot, &served);
        let s = q.summary();
        if s.arrivals - s.delivered != q.backlog() {
            return Err(format!(
                "Lindley conservation broke at slot {slot}: arrivals {} − delivered {} != backlog {}",
                s.arrivals,
                s.delivered,
                q.backlog()
            ));
        }
    }
    Ok(())
}

fn check_traffic_service_resume(spec: &ScenarioSpec) -> Result<(), String> {
    // Route the generated spec through its own JSON rendering: the
    // service executor re-ingests the document, so this doubles as the
    // traffic round-trip through ingest.
    let scenario = spec.to_json();
    let telemetry = Telemetry::disabled();
    let seed = spec.seeds.start;

    let mut plain = support::CheckpointCtrl::new();
    let baseline = ServiceExecutor
        .run_seed(&scenario, seed, None, &telemetry, &mut plain)
        .map_err(|e| format!("baseline run failed: {e}"))?
        .ok_or_else(|| "baseline run stopped unexpectedly".to_string())?;

    // Interrupt mid-run at a period boundary that exists for every
    // generated horizon/update-period pair.
    let cfg = policy_run_of(spec)?;
    let periods = cfg.horizon / cfg.update_period as u64;
    let at = (periods / 2).max(1);
    let mut interrupter = support::CheckpointCtrl::interrupt_at(at);
    let stopped = ServiceExecutor
        .run_seed(&scenario, seed, None, &telemetry, &mut interrupter)
        .map_err(|e| format!("interrupted run failed: {e}"))?;
    if stopped.is_some() || interrupter.checkpoints.len() != 1 {
        return Err(format!(
            "interrupt did not stop the job (stopped={}, checkpoints={})",
            stopped.is_some(),
            interrupter.checkpoints.len()
        ));
    }

    let mut resumed_ctrl = support::CheckpointCtrl::new();
    let resumed = ServiceExecutor
        .run_seed(
            &scenario,
            seed,
            Some(&interrupter.checkpoints[0]),
            &telemetry,
            &mut resumed_ctrl,
        )
        .map_err(|e| format!("resume failed: {e}"))?
        .ok_or_else(|| "resumed run stopped unexpectedly".to_string())?;

    if resumed.artifact != baseline.artifact {
        return Err("resumed artifact differs from the uninterrupted run".to_string());
    }
    if resumed.metrics.len() != baseline.metrics.len()
        || resumed
            .metrics
            .iter()
            .zip(&baseline.metrics)
            .any(|((ka, va), (kb, vb))| ka != kb || va.to_bits() != vb.to_bits())
    {
        return Err(format!(
            "resumed metrics differ:\nbaseline: {:?}\nresumed:  {:?}",
            baseline.metrics, resumed.metrics
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness treats a *generator* panic as a pass (only relevant
    /// while shrinking replays degenerate choice sequences), so a
    /// generator that panicked on the honest path would silently skip
    /// its contract. Pin that every contract's strategy generates
    /// cleanly from the exact RNGs the harness will use.
    #[test]
    fn every_contract_generates_cleanly_on_the_honest_path() {
        use proptest::TestRng;
        let mut contracts = all();
        contracts.push(tampered_decide_parity());
        for contract in &contracts {
            let strat = (contract.strategy)(&contract.knobs);
            for case in 0..contract.default_cases.min(16) {
                let mut rng = TestRng::for_case(contract.name, case);
                let spec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    strat.generate(&mut rng)
                }))
                .unwrap_or_else(|_| panic!("{} generator panicked on case {case}", contract.name));
                assert!(
                    !rng.choices().is_empty(),
                    "{}: no choices drawn",
                    contract.name
                );
                drop(spec);
            }
        }
    }

    #[test]
    fn inventory_names_are_unique_and_test_safe() {
        let contracts = all();
        let mut names: Vec<_> = contracts.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), contracts.len(), "duplicate contract names");
        for c in &contracts {
            assert!(
                c.name
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch == '_'),
                "{} is not a legal #[test] identifier",
                c.name
            );
            assert!(c.default_cases > 0);
        }
    }
}
