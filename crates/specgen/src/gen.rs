//! `ArbSpec`: proptest strategies over the declarative spec surface.
//!
//! Every implementation generates inside two envelopes at once:
//!
//! - the **ingest validity envelope** — whatever
//!   `mhca_campaign::scenarios_from_str` accepts (positive periods,
//!   fractions in range, strictly-increasing drift breakpoints with
//!   `ramp ≤` every gap, flow endpoints `< n` with `src ≠ dst`, …), so
//!   round-trip contracts never trip validation on their own inputs; and
//! - the **runtime envelope** — sizes and budgets small enough that every
//!   generated scenario runs in milliseconds ([`SpecKnobs`] bounds `n`,
//!   `m`, horizons, and seed counts; exponential-optimum kinds are gated
//!   behind [`SpecKnobs::heavy`] and clamped to tiny `n`).
//!
//! Generator order matters for shrink quality: the vendored proptest
//! shrinker drives every recorded choice toward zero, and a zero choice
//! selects a range's start / a `Union`'s first option / a collection's
//! minimum size. Each `Union` below therefore lists its simplest variant
//! first, and each range starts at its most trivial admissible value, so
//! minimized counterexamples read as the smallest spec that still fails.

use mhca_campaign::{ExperimentKind, ScenarioSpec, SeedRange};
use mhca_channels::ChannelModelSpec;
use mhca_core::experiment::ObserverKind;
use mhca_core::experiments::{
    ComplexityConfig, Fig5Config, Fig6Config, Fig7Config, Fig8Config, PolicyRunConfig, PolicySpec,
    Theorem3Config,
};
use mhca_core::{ArrivalProcess, FlowSpec, TrafficSpec};
use mhca_graph::TopologySpec;
use mhca_sim::LossSpec;
use proptest::collection::vec;
use proptest::strategy::{BoxedStrategy, Just, Strategy, Union};

/// Size/validity knobs bounding every generated spec.
///
/// The defaults (== [`SpecKnobs::quick`]) keep any single generated
/// scenario's full seed sweep in the low-millisecond range, which is what
/// lets the contract battery afford dozens of cases per entry point.
#[derive(Debug, Clone, Copy)]
pub struct SpecKnobs {
    /// Upper bound on users `N` (inclusive; lower bound is 4).
    pub max_n: usize,
    /// Upper bound on channels `M` (inclusive; lower bound is 1).
    pub max_m: usize,
    /// Upper bound on slot horizons (inclusive).
    pub max_horizon: u64,
    /// Upper bound on seeds per scenario (inclusive; lower bound is 1).
    pub max_seeds: u64,
    /// Allow kinds that compute exact optima (`fig7`, `theorem3`) —
    /// worst-case exponential in `n`, so they stay clamped to tiny
    /// networks even when enabled.
    pub heavy: bool,
    /// Allow traffic workloads on generated policy runs.
    pub traffic: bool,
}

impl SpecKnobs {
    /// The battery preset: small networks, short horizons, ≤ 2 seeds.
    pub fn quick() -> Self {
        SpecKnobs {
            max_n: 12,
            max_m: 3,
            max_horizon: 160,
            max_seeds: 2,
            heavy: false,
            traffic: true,
        }
    }

    /// As [`SpecKnobs::quick`] but with the exponential-optimum kinds
    /// enabled — right for pure-serialization contracts that never run
    /// the experiment, and affordable (at low case counts) for run
    /// contracts too.
    pub fn full() -> Self {
        SpecKnobs {
            heavy: true,
            ..SpecKnobs::quick()
        }
    }
}

impl Default for SpecKnobs {
    fn default() -> Self {
        SpecKnobs::quick()
    }
}

/// A spec type with a canonical bounded-validity strategy.
///
/// The `specgen` analogue of proptest's `Arbitrary`, parameterized by
/// [`SpecKnobs`] instead of being knob-free: spec validity is relational
/// (horizons bound ramps, `n` bounds flow endpoints), so the knobs thread
/// the shared bounds through every component generator.
pub trait ArbSpec: Sized + std::fmt::Debug {
    /// Strategy over valid values of this spec type.
    fn arb_spec(knobs: &SpecKnobs) -> BoxedStrategy<Self>;
}

impl ArbSpec for TopologySpec {
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        // `avg_degree` stays below the minimum generated `n` (4): the
        // unit-disk constructors require `avg_degree < n`.
        Union::new(vec![
            Just(TopologySpec::Line).boxed(),
            Just(TopologySpec::Ring).boxed(),
            Just(TopologySpec::Grid).boxed(),
            Just(TopologySpec::Star).boxed(),
            Just(TopologySpec::Complete).boxed(),
            Just(TopologySpec::Independent).boxed(),
            (2.0f64..=3.5)
                .prop_map(|avg_degree| TopologySpec::UnitDisk { avg_degree })
                .boxed(),
            (3.0f64..=3.5)
                .prop_map(|avg_degree| TopologySpec::UnitDiskConnected { avg_degree })
                .boxed(),
        ])
        .boxed()
    }
}

impl ArbSpec for ChannelModelSpec {
    fn arb_spec(knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        let max_horizon = knobs.max_horizon;
        Union::new(vec![
            Just(ChannelModelSpec::ConstantRateClasses).boxed(),
            (0.0f64..=0.5)
                .prop_map(|sigma_frac| ChannelModelSpec::GaussianRateClasses { sigma_frac })
                .boxed(),
            (0.2f64..=1.0)
                .prop_map(|p| ChannelModelSpec::BernoulliRateClasses { p })
                .boxed(),
            (0.0f64..=1.0)
                .prop_map(|spread_frac| ChannelModelSpec::UniformRateClasses { spread_frac })
                .boxed(),
            (0.0f64..=1.0, 1u64..=64)
                .prop_map(
                    |(amp_frac, period)| ChannelModelSpec::AdversarialSinusoidal {
                        amp_frac,
                        period,
                    },
                )
                .boxed(),
            (0.0f64..=1.0, 1u64..=64)
                .prop_map(
                    |(swing_frac, dwell)| ChannelModelSpec::AdversarialSwitching {
                        swing_frac,
                        dwell,
                    },
                )
                .boxed(),
            (1u64..=max_horizon)
                .prop_map(|horizon| ChannelModelSpec::AdversarialRamp { horizon })
                .boxed(),
            arb_drifting(),
        ])
        .boxed()
    }
}

/// The drifting family: strictly-increasing positive breakpoints built
/// from positive gaps, with `ramp` bounded by the smallest gap (a ramp
/// must finish before the next flip begins — the ingest invariant).
fn arb_drifting() -> BoxedStrategy<ChannelModelSpec> {
    (0.0f64..=1.0, vec(1u64..=40, 1..4))
        .prop_flat_map(|(shift_frac, gaps)| {
            let min_gap = *gaps.iter().min().expect("non-empty gaps");
            (Just(shift_frac), Just(gaps), 0u64..=min_gap)
        })
        .prop_map(|(shift_frac, gaps, ramp)| {
            let mut t = 0;
            let breakpoints = gaps
                .into_iter()
                .map(|g| {
                    t += g;
                    t
                })
                .collect();
            ChannelModelSpec::Drifting {
                shift_frac,
                breakpoints,
                ramp,
            }
        })
        .boxed()
}

impl ArbSpec for LossSpec {
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        Union::new(vec![
            Just(LossSpec::lossless()).boxed(),
            (0.0f64..0.3, 0u64..=1000)
                .prop_map(|(prob, seed)| LossSpec::lossy(prob, seed))
                .boxed(),
        ])
        .boxed()
    }
}

impl ArbSpec for PolicySpec {
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        Union::new(vec![
            Just(PolicySpec::Random).boxed(),
            Just(PolicySpec::Oracle).boxed(),
            (0.5f64..=4.0).prop_map(|l| PolicySpec::CsUcb { l }).boxed(),
            (0.5f64..=4.0).prop_map(|l| PolicySpec::Llr { l }).boxed(),
            (0.1f64..=2.0)
                .prop_map(|sigma| PolicySpec::Thompson { sigma })
                .boxed(),
            (0.5f64..=1.0)
                .prop_map(|gamma| PolicySpec::DiscountedCsUcb { gamma })
                .boxed(),
            (0.0f64..=1.0)
                .prop_map(|eps| PolicySpec::EpsilonGreedy { eps })
                .boxed(),
        ])
        .boxed()
    }
}

impl ArbSpec for ObserverKind {
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        // `DecideTiming` streams wall-clock time and is therefore the one
        // observer that breaks byte-identity between reruns; it is still
        // generated here (serialization contracts cover it) but excluded
        // by [`arb_deterministic_observers`], which every contract that
        // compares run artifacts uses instead.
        Union::new(vec![
            Just(ObserverKind::CommTotals).boxed(),
            Just(ObserverKind::PerVertexTx).boxed(),
            Just(ObserverKind::Throughput).boxed(),
            Just(ObserverKind::CaptureStats).boxed(),
            Just(ObserverKind::FlowDelay).boxed(),
            (0.0f64..=2.0, 0.0f64..=1.0)
                .prop_map(|(probe_cost, report_cost)| ObserverKind::SensingCost {
                    probe_cost,
                    report_cost,
                })
                .boxed(),
            (10u64..=500)
                .prop_map(|window| ObserverKind::WindowedRegret { window })
                .boxed(),
            (1u64..=128)
                .prop_map(|bound| ObserverKind::QueueTail { bound })
                .boxed(),
            Just(ObserverKind::DecideTiming).boxed(),
        ])
        .boxed()
    }
}

/// An observer list with unique labels (the ingest invariant).
/// `allow_wallclock` admits [`ObserverKind::DecideTiming`] — only safe
/// for contracts that never compare run artifacts across reruns.
pub fn arb_observers(knobs: &SpecKnobs, allow_wallclock: bool) -> BoxedStrategy<Vec<ObserverKind>> {
    vec(ObserverKind::arb_spec(knobs), 0..4)
        .prop_map(move |obs| {
            let mut out: Vec<ObserverKind> = Vec::new();
            for o in obs {
                if (allow_wallclock || o.label() != "decide-timing")
                    && out.iter().all(|p| p.label() != o.label())
                {
                    out.push(o);
                }
            }
            out
        })
        .boxed()
}

/// An observer list with unique labels (the ingest invariant) and no
/// wall-clock [`ObserverKind::DecideTiming`] — safe for any contract that
/// compares artifacts or metrics across reruns.
pub fn arb_deterministic_observers(knobs: &SpecKnobs) -> BoxedStrategy<Vec<ObserverKind>> {
    arb_observers(knobs, false)
}

impl ArbSpec for ArrivalProcess {
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        Union::new(vec![
            (1u64..=16)
                .prop_map(|period| ArrivalProcess::Deterministic { period })
                .boxed(),
            (0.05f64..=1.5)
                .prop_map(|rate| ArrivalProcess::Poisson { rate })
                .boxed(),
            (1u64..=8)
                .prop_flat_map(|burst| (Just(burst), 0.05f64..=(burst as f64)))
                .prop_map(|(burst, rate)| ArrivalProcess::Bursty { rate, burst })
                .boxed(),
        ])
        .boxed()
    }
}

/// A traffic workload whose flow endpoints all lie below `n` — the
/// knob-free dependent generator for use after a network size is chosen.
/// Endpoints need not be mutually reachable (unrouted flows are legal and
/// carry no traffic); they must only be in range and distinct.
pub fn arb_traffic_spec(n: usize) -> BoxedStrategy<TrafficSpec> {
    assert!(n >= 2, "traffic needs at least two nodes");
    let flow = (0usize..n, 1usize..n, 0u64..=40).prop_map(move |(src, delta, ddl)| FlowSpec {
        src,
        dst: (src + delta) % n,
        deadline: if ddl == 0 { None } else { Some(ddl) },
    });
    (
        ArrivalProcess::arb_spec(&SpecKnobs::quick()),
        vec(flow, 1..4),
        25.0f64..=400.0,
        0u64..=1000,
    )
        .prop_map(|(arrivals, flows, packet_kbps, seed)| TrafficSpec {
            arrivals,
            flows,
            packet_kbps,
            seed,
        })
        .boxed()
}

impl ArbSpec for TrafficSpec {
    /// Endpoints below 4 — valid for *any* network this crate generates
    /// (`n ≥ 4`). Prefer [`arb_traffic_spec`] when the actual `n` is in
    /// scope.
    fn arb_spec(_knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        arb_traffic_spec(4)
    }
}

impl ArbSpec for SeedRange {
    fn arb_spec(knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        let max_seeds = knobs.max_seeds.max(1);
        (0u64..=1000, 1u64..=max_seeds)
            .prop_map(|(start, count)| SeedRange::new(start, count))
            .boxed()
    }
}

/// A generated policy-run config — the cross-product axis experiment, and
/// the kind most run-based contracts restrict to.
pub fn arb_policy_run_config(knobs: &SpecKnobs) -> BoxedStrategy<PolicyRunConfig> {
    let traffic = knobs.traffic;
    (
        (4usize..=knobs.max_n, 1usize..=knobs.max_m),
        (
            TopologySpec::arb_spec(knobs),
            ChannelModelSpec::arb_spec(knobs),
            PolicySpec::arb_spec(knobs),
            LossSpec::arb_spec(knobs),
        ),
        (
            20u64..=knobs.max_horizon,
            1usize..=4,
            1usize..=2,
            1usize..=6,
        ),
        1usize..=4,
    )
        .prop_flat_map(move |(nm, specs, run, partitions)| {
            let n = nm.0;
            let with_traffic: BoxedStrategy<Option<TrafficSpec>> = if traffic {
                Union::new(vec![
                    Just(None).boxed(),
                    arb_traffic_spec(n).prop_map(Some).boxed(),
                ])
                .boxed()
            } else {
                Just(None).boxed()
            };
            (Just((nm, specs, run, partitions)), with_traffic)
        })
        .prop_map(
            |(
                (
                    (n, m),
                    (topology, channel, policy, loss),
                    (horizon, update_period, r, minirounds),
                    partitions,
                ),
                traffic,
            )| {
                PolicyRunConfig {
                    n,
                    m,
                    topology,
                    channel,
                    policy,
                    loss,
                    horizon,
                    update_period,
                    r,
                    minirounds,
                    partitions,
                    traffic,
                    // Ingest re-parses onto `Default`, so a round-tripping
                    // config must keep the unserialized seed field there.
                    seed: PolicyRunConfig::default().seed,
                }
            },
        )
        .boxed()
}

impl ArbSpec for ExperimentKind {
    fn arb_spec(knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        let k = *knobs;
        let mut options: Vec<BoxedStrategy<ExperimentKind>> = vec![
            arb_policy_run_config(&k)
                .prop_map(ExperimentKind::PolicyRun)
                .boxed(),
            Just(ExperimentKind::Table2).boxed(),
            (vec(4usize..=24, 1..4), 1usize..=2)
                .prop_map(|(ns, r)| ExperimentKind::Fig5(Fig5Config { ns, r }))
                .boxed(),
            (
                vec((4usize..=k.max_n, 1usize..=k.max_m), 1..3),
                (
                    TopologySpec::arb_spec(&k),
                    ChannelModelSpec::arb_spec(&k),
                    LossSpec::arb_spec(&k),
                ),
                (1usize..=2, 1usize..=8),
            )
                .prop_map(|(sizes, (topology, channel, loss), (r, minirounds))| {
                    ExperimentKind::Fig6(Fig6Config {
                        sizes,
                        topology,
                        channel,
                        loss,
                        r,
                        minirounds,
                        ..Fig6Config::default()
                    })
                })
                .boxed(),
            (
                (6usize..=k.max_n, 1usize..=2),
                (
                    TopologySpec::arb_spec(&k),
                    ChannelModelSpec::arb_spec(&k),
                    LossSpec::arb_spec(&k),
                ),
                (vec(1usize..=6, 1..3), 10u64..=40, 1usize..=2, 1usize..=6),
            )
                .prop_map(
                    |(
                        (n, m),
                        (topology, channel, loss),
                        (update_periods, updates_per_run, r, minirounds),
                    )| {
                        ExperimentKind::Fig8(Fig8Config {
                            n,
                            m,
                            topology,
                            channel,
                            loss,
                            update_periods,
                            updates_per_run,
                            r,
                            minirounds,
                            ..Fig8Config::default()
                        })
                    },
                )
                .boxed(),
            (
                (
                    vec(6usize..=20, 1..3),
                    1usize..=k.max_m,
                    vec(1usize..=2, 1..3),
                ),
                (
                    TopologySpec::arb_spec(&k),
                    ChannelModelSpec::arb_spec(&k),
                    1usize..=6,
                ),
            )
                .prop_map(|((ns, m, rs), (topology, channel, minirounds))| {
                    ExperimentKind::Complexity(ComplexityConfig {
                        ns,
                        m,
                        rs,
                        topology,
                        channel,
                        minirounds,
                        ..ComplexityConfig::default()
                    })
                })
                .boxed(),
            (arb_policy_run_config(&k), PolicySpec::arb_spec(&k))
                .prop_map(|(base, challenger)| ExperimentKind::PolicyDuel { base, challenger })
                .boxed(),
        ];
        if k.heavy {
            // Exponential exact-optimum kinds: clamp `n` hard regardless
            // of `max_n`.
            options.push(
                (
                    (4usize..=8, 1usize..=2),
                    (
                        TopologySpec::arb_spec(&k),
                        ChannelModelSpec::arb_spec(&k),
                        LossSpec::arb_spec(&k),
                    ),
                    (20u64..=60, 1usize..=2, 1usize..=4),
                )
                    .prop_map(
                        |((n, m), (topology, channel, loss), (horizon, r, minirounds))| {
                            ExperimentKind::Fig7(Fig7Config {
                                n,
                                m,
                                topology,
                                channel,
                                loss,
                                horizon,
                                r,
                                minirounds,
                                ..Fig7Config::default()
                            })
                        },
                    )
                    .boxed(),
            );
            options.push(
                (
                    (4usize..=10, 1usize..=2, 1u64..=3),
                    (TopologySpec::arb_spec(&k), ChannelModelSpec::arb_spec(&k)),
                )
                    .prop_map(|((n, m, instances), (topology, channel))| {
                        ExperimentKind::Theorem3(Theorem3Config {
                            n,
                            m,
                            topology,
                            channel,
                            instances,
                            ..Theorem3Config::default()
                        })
                    })
                    .boxed(),
            );
        }
        Union::new(options).boxed()
    }
}

/// A scenario/artifact-safe name: non-empty, kebab `[a-z0-9-]`, no path
/// separators or control characters (the ingest rules), prefixed so a
/// shrunk minimal scenario still reads as generated.
fn arb_name() -> BoxedStrategy<String> {
    vec(0u8..36, 0..8)
        .prop_map(|digits| {
            let mut s = String::from("g");
            for d in digits {
                s.push(char::from_digit(u32::from(d), 36).expect("digit < 36"));
            }
            s
        })
        .boxed()
}

impl ArbSpec for ScenarioSpec {
    fn arb_spec(knobs: &SpecKnobs) -> BoxedStrategy<Self> {
        (
            arb_name(),
            ExperimentKind::arb_spec(knobs),
            SeedRange::arb_spec(knobs),
            arb_deterministic_observers(knobs),
        )
            .prop_map(|(name, kind, seeds, observers)| {
                let title = format!("generated scenario {name}");
                ScenarioSpec::new(name, title, kind, seeds).with_observers(observers)
            })
            .boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::TestRng;

    fn knobs() -> SpecKnobs {
        SpecKnobs::full()
    }

    #[test]
    fn generated_scenarios_reingest_cleanly() {
        let strat = ScenarioSpec::arb_spec(&knobs());
        let mut rng = TestRng::for_case("gen-smoke", 0);
        for _ in 0..200 {
            let spec = strat.generate(&mut rng);
            let text = spec.to_json().to_string_pretty();
            let parsed = mhca_campaign::scenarios_from_str(&text)
                .unwrap_or_else(|e| panic!("generated spec rejected by ingest: {e}\n{text}"));
            assert_eq!(parsed, vec![spec]);
        }
    }

    #[test]
    fn drifting_breakpoints_strictly_increase_and_bound_ramp() {
        let strat = arb_drifting();
        let mut rng = TestRng::for_case("drift", 0);
        for _ in 0..200 {
            let ChannelModelSpec::Drifting {
                breakpoints, ramp, ..
            } = strat.generate(&mut rng)
            else {
                panic!("wrong family");
            };
            assert!(breakpoints[0] > 0);
            let mut min_gap = breakpoints[0];
            for w in breakpoints.windows(2) {
                assert!(w[1] > w[0], "not strictly increasing: {breakpoints:?}");
                min_gap = min_gap.min(w[1] - w[0]);
            }
            assert!(ramp <= min_gap, "ramp {ramp} exceeds min gap {min_gap}");
        }
    }

    #[test]
    fn traffic_endpoints_stay_in_range_and_distinct() {
        let strat = arb_traffic_spec(5);
        let mut rng = TestRng::for_case("traffic", 0);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(!t.flows.is_empty());
            for f in &t.flows {
                assert!(f.src < 5 && f.dst < 5 && f.src != f.dst, "bad flow {f:?}");
                assert!(f.deadline.is_none_or(|d| d > 0));
            }
            assert!(t.packet_kbps > 0.0);
        }
    }

    #[test]
    fn zero_choices_yield_the_minimal_scenario() {
        let strat = ScenarioSpec::arb_spec(&knobs());
        let mut rng = TestRng::from_choices(Vec::new());
        let spec = strat.generate(&mut rng);
        // The all-zero choice sequence selects every first option and
        // range start: the shrinker's fixed point is a tiny named
        // policy-run on the smallest admissible network.
        assert_eq!(spec.name, "g");
        assert!(spec.observers.is_empty());
        assert_eq!(spec.seeds, SeedRange::new(0, 1));
        match spec.kind {
            ExperimentKind::PolicyRun(cfg) => {
                assert_eq!((cfg.n, cfg.m), (4, 1));
                assert_eq!(cfg.topology, TopologySpec::Line);
                assert!(cfg.traffic.is_none());
            }
            other => panic!("expected the policy-run variant first, got {other:?}"),
        }
    }
}
