//! Contract driver: generate → check → shrink → report.
//!
//! [`run_contract`] runs one [`Contract`] over `cases` generated
//! scenarios. Every case derives its RNG deterministically from the
//! contract name and case index, so a failure is reproducible from
//! `(contract, case)` alone. On failure the recorded choice sequence is
//! minimized with [`proptest::shrink::minimize`], the minimal sequence is
//! replayed to recover the smallest failing [`ScenarioSpec`], and the
//! whole report — spec JSON, message, choice vector — comes back as a
//! [`HarnessFailure`].
//!
//! [`run_named`] is the `#[test]`-facing wrapper (the [`crate::harness!`]
//! macro expands to it): it additionally writes the report to
//! `target/specgen/<contract>.counterexample.txt` so CI can upload it as
//! an artifact, then panics with replay instructions.

use crate::contracts::{self, Contract};
use mhca_campaign::ScenarioSpec;
use proptest::strategy::{BoxedStrategy, Strategy};
use proptest::{shrink, TestRng};
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// A contract violation, fully shrunk and replayable.
#[derive(Debug, Clone)]
pub struct HarnessFailure {
    /// Contract that failed.
    pub contract: &'static str,
    /// Case index whose RNG first produced a failing spec.
    pub case: u32,
    /// Check error (or panic payload) on the minimal spec.
    pub message: String,
    /// Pretty JSON of the shrunk minimal failing scenario.
    pub spec: String,
    /// Choice sequence that regenerates the minimal spec via
    /// [`TestRng::from_choices`].
    pub choices: Vec<u64>,
}

impl HarnessFailure {
    /// The human-facing report (also the counterexample artifact body).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "contract `{}` violated (case {})",
            self.contract, self.case
        );
        let _ = writeln!(out, "\nminimal failing scenario:\n{}", self.spec);
        let _ = writeln!(out, "\nfailure:\n{}", self.message);
        let _ = writeln!(
            out,
            "\nreplay deterministically:\n  mhca_specgen::replay_choices(\"{}\", &{:?})",
            self.contract, self.choices
        );
        let _ = writeln!(
            out,
            "or re-run just the originating case:\n  mhca_specgen::replay_case(\"{}\", {})",
            self.contract, self.case
        );
        out
    }
}

/// Case budget for a contract: the `MHCA_SPECGEN_CASES` environment
/// variable when set (global override, used by CI), else the contract's
/// own default.
pub fn cases_for(contract: &Contract) -> u32 {
    std::env::var("MHCA_SPECGEN_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(contract.default_cases)
}

/// Generates one spec from `rng` and applies the check, catching panics.
/// Returns the pretty spec JSON and the failure message on violation.
fn eval_once(
    contract: &Contract,
    strat: &BoxedStrategy<ScenarioSpec>,
    rng: &mut TestRng,
) -> Result<(), (String, String)> {
    let spec = match panic::catch_unwind(AssertUnwindSafe(|| strat.generate(rng))) {
        Ok(spec) => spec,
        // A generator panic (e.g. a degenerate choice replay hitting a
        // constructor precondition) is not a contract violation; treat
        // the sequence as passing so the shrinker avoids it.
        Err(_) => return Ok(()),
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| (contract.check)(&spec)));
    let message = match outcome {
        Ok(Ok(())) => return Ok(()),
        Ok(Err(msg)) => msg,
        Err(payload) => payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "check panicked with a non-string payload".to_string()),
    };
    Err((spec.to_json().to_string_pretty(), message))
}

/// Runs `cases` generated specs through the contract. The first failure
/// is shrunk to a minimal choice sequence and returned; `Ok` means every
/// case passed.
pub fn run_contract(contract: &Contract, cases: u32) -> Result<(), HarnessFailure> {
    let strat = (contract.strategy)(&contract.knobs);
    for case in 0..cases {
        let mut rng = TestRng::for_case(contract.name, case);
        if eval_once(contract, &strat, &mut rng).is_ok() {
            continue;
        }
        let original = rng.choices().to_vec();

        // Shrink quietly: each probe replays the (possibly panicking)
        // check, and the default panic hook would spam one backtrace per
        // probe.
        let saved_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let minimal = shrink::minimize(
            original,
            &mut |choices| {
                let mut replay = TestRng::from_choices(choices.to_vec());
                eval_once(contract, &strat, &mut replay).is_err()
            },
            2048,
        );
        panic::set_hook(saved_hook);

        let mut replay = TestRng::from_choices(minimal.clone());
        let (spec, message) = eval_once(contract, &strat, &mut replay)
            .expect_err("minimize returned a passing choice sequence");
        return Err(HarnessFailure {
            contract: contract.name,
            case,
            message,
            spec,
            choices: minimal,
        });
    }
    Ok(())
}

/// Looks a contract up by name in the inventory (`#[test]` entry point —
/// the [`crate::harness!`] macro expands to this). On violation, writes
/// the report to `target/specgen/<name>.counterexample.txt` and panics
/// with the full report.
pub fn run_named(name: &str) {
    let contract = contracts::all()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no contract named `{name}` in the inventory"));
    let cases = cases_for(&contract);
    if let Err(failure) = run_contract(&contract, cases) {
        let report = failure.report();
        if let Some(path) = counterexample_path(name) {
            let _ = std::fs::write(&path, &report);
            eprintln!("counterexample written to {}", path.display());
        }
        panic!("{report}");
    }
}

/// Re-runs one `(contract, case)` pair — the replay handle printed in
/// failure reports. Panics (with the report) iff the case still fails.
pub fn replay_case(name: &str, case: u32) {
    let contract = find(name);
    let strat = (contract.strategy)(&contract.knobs);
    let mut rng = TestRng::for_case(contract.name, case);
    if let Err((spec, message)) = eval_once(&contract, &strat, &mut rng) {
        panic!("contract `{name}` case {case} still fails:\n{spec}\n{message}");
    }
}

/// Replays an explicit choice sequence — the other replay handle printed
/// in failure reports. Panics (with the report) iff the sequence still
/// fails.
pub fn replay_choices(name: &str, choices: &[u64]) {
    let contract = find(name);
    let strat = (contract.strategy)(&contract.knobs);
    let mut rng = TestRng::from_choices(choices.to_vec());
    if let Err((spec, message)) = eval_once(&contract, &strat, &mut rng) {
        panic!("contract `{name}` still fails on {choices:?}:\n{spec}\n{message}");
    }
}

fn find(name: &str) -> Contract {
    let tampered = contracts::tampered_decide_parity();
    if tampered.name == name {
        return tampered;
    }
    contracts::all()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no contract named `{name}`"))
}

/// `target/specgen/<name>.counterexample.txt` under the workspace root
/// (found by walking up from the current directory to `Cargo.lock`).
fn counterexample_path(name: &str) -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            let out = dir.join("target").join("specgen");
            std::fs::create_dir_all(&out).ok()?;
            return Some(out.join(format!("{name}.counterexample.txt")));
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Derives one `#[test]` per named contract, each calling
/// [`harness::run_named`](run_named):
///
/// ```ignore
/// mhca_specgen::harness![spec_json_roundtrip, decide_parity];
/// ```
#[macro_export]
macro_rules! harness {
    ($($name:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                $crate::harness::run_named(stringify!($name));
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criteria meta-test: a seeded contract violation
    /// (decide parity with a perturbed reference) must come back as a
    /// shrunk minimal scenario plus a deterministically replayable
    /// choice sequence.
    #[test]
    fn tampered_contract_yields_shrunk_replayable_counterexample() {
        let contract = contracts::tampered_decide_parity();
        let failure = run_contract(&contract, 4).expect_err("tampered contract must fail");
        assert_eq!(failure.contract, "decide_parity_tampered");
        assert_eq!(failure.case, 0, "the very first case must already fail");
        assert!(
            failure.message.contains("perturbed"),
            "unexpected failure message: {}",
            failure.message
        );
        assert!(
            failure.spec.contains("policy-run"),
            "shrunk spec must still be a policy-run scenario:\n{}",
            failure.spec
        );

        // Deterministic replay: an independent second run produces the
        // identical minimal spec and choice sequence…
        let again = run_contract(&contract, 4).expect_err("second run must fail too");
        assert_eq!(failure.choices, again.choices);
        assert_eq!(failure.spec, again.spec);

        // …and the published choices regenerate exactly that spec.
        let strat = (contract.strategy)(&contract.knobs);
        let mut replay = proptest::TestRng::from_choices(failure.choices.clone());
        let (spec, _msg) = eval_once(&contract, &strat, &mut replay).expect_err("replay must fail");
        assert_eq!(spec, failure.spec);

        // The shrunk spec is *minimal*: since the tampered check fails on
        // every spec, the minimizer must reach the all-trivial fixpoint —
        // the zero-choice scenario.
        let mut zero = proptest::TestRng::from_choices(vec![]);
        let (zero_spec, _) =
            eval_once(&contract, &strat, &mut zero).expect_err("zero spec must fail");
        assert_eq!(
            failure.spec, zero_spec,
            "shrinker should reach the minimal zero-choice scenario"
        );
    }

    #[test]
    fn real_contracts_resolve_and_replay_helpers_accept_passing_cases() {
        // Inventory lookup path.
        for contract in contracts::all() {
            assert!(cases_for(&contract) > 0);
        }
        // A passing case replays without panicking.
        replay_case("spec_json_roundtrip", 0);
        replay_choices("spec_json_roundtrip", &[1, 2, 3]);
    }
}
