//! Spec-space generators and auto-derived property harnesses.
//!
//! The workspace's strongest guarantees — decide incremental == rescan
//! parity, ingest show → parse round-trips, serial == bounded == parallel
//! campaign artifacts, checkpoint/resume bit-exactness, traffic Lindley
//! conservation — were historically hand-enumerated batteries over a
//! couple dozen registry points, while the spec surface
//! (`TopologySpec × ChannelModelSpec × PolicySpec × LossSpec ×
//! TrafficSpec × observers`) is combinatorially larger. This crate closes
//! the gap the way autoharness tools do: derive the harnesses from the
//! spec types instead of enumerating them.
//!
//! Three layers:
//!
//! - [`gen`] — an [`ArbSpec`] implementation per spec type, composing
//!   into a full-[`ScenarioSpec`](mhca_campaign::ScenarioSpec) generator
//!   whose output always lies inside the ingest validity envelope *and*
//!   the engines' safe runtime envelope ([`SpecKnobs`] bounds sizes and
//!   budgets).
//! - [`contracts`] — one [`Contract`] per spec-taking
//!   entry point: `scenario_from_json`/`to_json` round-trip,
//!   `Network::from_spec`, `run_experiment` determinism, `decide_into` vs
//!   `decide_into_rescan`, serial vs bounded vs parallel campaign
//!   artifacts, `PolicyRunner` snapshot/restore, service checkpoint/resume
//!   byte-parity under traffic, and queue Lindley conservation.
//! - [`mod@harness`] — the driver: runs a contract over generated specs and,
//!   on failure, shrinks the spec via the vendored proptest
//!   choice-sequence minimizer, reports the minimal failing
//!   `ScenarioSpec` plus a replayable choice vector, and writes both to
//!   `target/specgen/<contract>.counterexample.txt` for CI artifact
//!   upload. The [`harness!`] macro auto-derives one `#[test]` per
//!   contract.
//!
//! The [`support`] module is the shared home for the spec-building test
//! helpers that were previously duplicated across the parity batteries.
//!
//! Case budgets default to each contract's own
//! [`default_cases`](contracts::Contract::default_cases) and can be
//! overridden globally with the `MHCA_SPECGEN_CASES` environment
//! variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod gen;
pub mod harness;
pub mod support;

pub use contracts::Contract;
pub use gen::{arb_deterministic_observers, arb_traffic_spec, ArbSpec, SpecKnobs};
pub use harness::{run_contract, run_named, HarnessFailure};
