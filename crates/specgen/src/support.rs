//! Shared spec-building and parity-assertion helpers for the workspace's
//! test batteries.
//!
//! Before this crate existed, `tests/decide_parity.rs`,
//! `tests/partition_parity.rs`, and `crates/campaign/tests/campaign.rs`
//! each carried a private copy of the topology zoo, the decision-parity
//! sequence assertion, and the campaign scaffolding. This module is the
//! single home: the batteries (and the [`crate::contracts`] harnesses)
//! import from here, so an engine API change lands in one place.

use mhca_campaign::runner::CampaignConfig;
use mhca_campaign::{ExperimentKind, ScenarioSpec, SeedRange};
use mhca_core::experiments::{Fig6Config, Fig7Config, Fig8Config};
use mhca_core::{DecisionOutcome, DistributedPtas, DistributedPtasConfig};
use mhca_graph::{topology, unit_disk, ExtendedConflictGraph, Graph};
use mhca_service::json::Json;
use mhca_service::{Directive, JobCtrl, JobProgress};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

/// A topology family: name plus a builder parameterized by instance seed.
pub type TopologyFamily = (&'static str, Box<dyn Fn(u64) -> Graph>);

/// The unified topology zoo of the parity batteries: every family the
/// historical `decide_parity`/`partition_parity` grids exercised, merged.
/// Instance seeds select sizes inside each family, so grids over
/// `(family, instance)` pin many distinct graphs.
pub fn topology_zoo() -> Vec<TopologyFamily> {
    vec![
        (
            "unit-disk-sparse",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                unit_disk::random_with_average_degree(28, 3.0, &mut rng).0
            }),
        ),
        (
            "unit-disk-dense",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                unit_disk::random_with_average_degree(24, 6.0, &mut rng).0
            }),
        ),
        (
            "unit-disk-mid",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                unit_disk::random_with_average_degree(26, 4.5, &mut rng).0
            }),
        ),
        (
            "line",
            Box::new(|seed| topology::line(16 + (seed % 9) as usize)),
        ),
        (
            "ring",
            Box::new(|seed| topology::ring(12 + (seed % 7) as usize)),
        ),
        (
            "grid",
            Box::new(|seed| topology::grid(3 + (seed % 3) as usize, 5)),
        ),
        (
            "sparse-components",
            Box::new(|seed| sparse_components(20, seed)),
        ),
    ]
}

/// Disconnected components with a few seeded cross edges — the
/// historical `sparse-components` family.
pub fn sparse_components(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    for _ in 0..n {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Fresh uniform weights in `[0.05, 1)` for every vertex of `h`.
pub fn random_weights(h: &ExtendedConflictGraph, rng: &mut StdRng) -> Vec<f64> {
    (0..h.n_vertices())
        .map(|_| rng.gen_range(0.05..1.0))
        .collect()
}

/// One decision sequence on a fresh incremental/reference engine pair;
/// returns `(decisions compared, incremental scans, reference scans)`.
///
/// Panics on the first outcome mismatch, and whenever the incremental
/// path scans *more* candidates than the reference (a per-round tie is
/// possible, so the strictly-fewer claim belongs to grid aggregates).
pub fn assert_parity_sequence(
    h: &ExtendedConflictGraph,
    cfg: DistributedPtasConfig,
    weight_seed: u64,
    decisions: usize,
    label: &str,
) -> (usize, u64, u64) {
    let mut incremental = DistributedPtas::new(h, cfg);
    let mut reference = DistributedPtas::new(h, cfg);
    let mut got = DecisionOutcome::default();
    let mut expect = DecisionOutcome::default();
    let mut rng = StdRng::seed_from_u64(weight_seed);
    let (mut inc_total, mut ref_total) = (0u64, 0u64);
    for step in 0..decisions {
        let w = random_weights(h, &mut rng);
        incremental.decide_into(&w, &mut got);
        reference.decide_into_rescan(&w, &mut expect);
        assert_eq!(got, expect, "{label}, step {step}");
        let (inc, re) = (
            incremental.scan_stats().candidates_scanned,
            reference.scan_stats().candidates_scanned,
        );
        assert!(inc <= re, "{label}, step {step}: scanned {inc} > {re}");
        inc_total += inc;
        ref_total += re;
    }
    (decisions, inc_total, ref_total)
}

/// Runs `decisions` fresh-weight decisions on one persistent
/// serial/tiled/rescan engine triple, asserting outcome and scan-stat
/// equality at every step.
pub fn assert_tiled_parity_sequence(
    h: &ExtendedConflictGraph,
    base: DistributedPtasConfig,
    partitions: usize,
    threads: usize,
    weight_seed: u64,
    decisions: usize,
    label: &str,
) {
    let mut serial = DistributedPtas::new(h, base);
    let mut tiled = DistributedPtas::new(h, base.with_partitions(partitions).with_threads(threads));
    let mut oracle = DistributedPtas::new(h, base);
    let mut expect = DecisionOutcome::default();
    let mut got = DecisionOutcome::default();
    let mut truth = DecisionOutcome::default();
    let mut rng = StdRng::seed_from_u64(weight_seed);
    for step in 0..decisions {
        let w = random_weights(h, &mut rng);
        serial.decide_into(&w, &mut expect);
        tiled.decide_into(&w, &mut got);
        oracle.decide_into_rescan(&w, &mut truth);
        assert_eq!(
            got, expect,
            "{label} p={partitions} t={threads}, step {step}: tiled != serial"
        );
        assert_eq!(
            got, truth,
            "{label} p={partitions} t={threads}, step {step}: tiled != rescan oracle"
        );
        assert_eq!(
            tiled.scan_stats(),
            serial.scan_stats(),
            "{label} p={partitions} t={threads}, step {step}: scan stats diverged"
        );
        // Explicit spot checks on the fields most exposed to merge-order
        // bugs, so a future PartialEq derive change cannot silently weaken
        // the batteries that call this.
        assert_eq!(got.leaders_flat, expect.leaders_flat, "{label} step {step}");
        assert_eq!(got.counters, expect.counters, "{label} step {step}");
        assert_eq!(
            got.fallback_floods, expect.fallback_floods,
            "{label} step {step}"
        );
    }
}

/// Fresh temp directory per test (process-unique + tag-unique).
pub fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhca-specgen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Silences a campaign config's progress output (tests and harnesses).
pub fn quiet(cfg: CampaignConfig) -> CampaignConfig {
    CampaignConfig { quiet: true, ..cfg }
}

/// A small but real campaign: the paper's Fig. 6 / Fig. 7 / Fig. 8 and
/// Table 2 from scaled-down registry-style specs, multi-seed where the
/// experiment is randomized.
pub fn paper_campaign() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new(
            "fig6",
            "Fig. 6 (scaled)",
            ExperimentKind::Fig6(Fig6Config::quick()),
            SeedRange::new(61, 2),
        ),
        ScenarioSpec::new(
            "fig7",
            "Fig. 7 (scaled)",
            ExperimentKind::Fig7(Fig7Config::quick()),
            SeedRange::new(71, 2),
        ),
        ScenarioSpec::new(
            "fig8",
            "Fig. 8 (scaled)",
            ExperimentKind::Fig8(Fig8Config::quick()),
            SeedRange::new(81, 2),
        ),
        ScenarioSpec::new(
            "table2",
            "Table II",
            ExperimentKind::Table2,
            SeedRange::new(0, 1),
        ),
    ]
}

/// A scaled-down drift scenario shaped like the registry's `drift-regret`
/// plus a capture/sensing scenario — the observer-zoo workload.
pub fn observer_zoo_campaign() -> Vec<ScenarioSpec> {
    use mhca_channels::ChannelModelSpec;
    use mhca_core::{ObserverKind, PolicyRunConfig};
    vec![
        ScenarioSpec::new(
            "drift-mini",
            "windowed regret under drift (scaled)",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                channel: ChannelModelSpec::Drifting {
                    shift_frac: 0.5,
                    breakpoints: vec![100, 200],
                    ramp: 0,
                },
                horizon: 300,
                ..PolicyRunConfig::quick()
            }),
            SeedRange::new(0, 2),
        )
        .with_observers(vec![
            ObserverKind::WindowedRegret { window: 50 },
            ObserverKind::CommTotals,
        ]),
        ScenarioSpec::new(
            "capture-mini",
            "capture/sensing tallies (scaled)",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                channel: ChannelModelSpec::AdversarialSwitching {
                    swing_frac: 1.0,
                    dwell: 20,
                },
                horizon: 120,
                ..PolicyRunConfig::quick()
            }),
            SeedRange::new(0, 2),
        )
        .with_observers(vec![
            ObserverKind::CaptureStats,
            ObserverKind::SensingCost {
                probe_cost: 1.0,
                report_cost: 0.1,
            },
        ]),
    ]
}

/// A scripted [`JobCtrl`] for service-executor tests: counts polls,
/// collects checkpoints, and optionally checkpoints (and stops) at one
/// specific poll — the public home of the `InertCtrl` pattern the
/// service-resume batteries previously duplicated.
#[derive(Debug, Default)]
pub struct CheckpointCtrl {
    /// Poll count so far.
    pub polls: u64,
    /// Checkpoints saved, in order.
    pub checkpoints: Vec<Json>,
    /// When `Some(k)`, the `k`-th poll answers `Checkpoint` (or
    /// `CheckpointAndStop` when [`Self::stop_after_checkpoint`]).
    pub checkpoint_at: Option<u64>,
    /// Stop the job right after the scripted checkpoint.
    pub stop_after_checkpoint: bool,
}

impl CheckpointCtrl {
    /// A ctrl that always answers `Continue`.
    pub fn new() -> Self {
        CheckpointCtrl::default()
    }

    /// A ctrl that checkpoints-and-stops at the `at`-th poll.
    pub fn interrupt_at(at: u64) -> Self {
        CheckpointCtrl {
            checkpoint_at: Some(at),
            stop_after_checkpoint: true,
            ..CheckpointCtrl::default()
        }
    }
}

impl JobCtrl for CheckpointCtrl {
    fn poll(&mut self, _progress: JobProgress) -> Directive {
        self.polls += 1;
        if Some(self.polls) == self.checkpoint_at {
            if self.stop_after_checkpoint {
                Directive::CheckpointAndStop
            } else {
                Directive::Checkpoint
            }
        } else {
            Directive::Continue
        }
    }

    fn save_checkpoint(&mut self, state: Json) {
        self.checkpoints.push(state);
    }
}
