//! Captures build provenance (rustc version, git commit) into rustc env
//! vars so [`Provenance::capture`] can stamp them into artifacts at
//! runtime without shelling out. Both probes are best-effort: a missing
//! `git` binary or a tarball checkout degrades to `"unknown"` instead of
//! failing the build.

use std::env;
use std::process::Command;

fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_string())
    }
}

fn main() {
    let rustc = env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let rustc_version = probe(&rustc, &["--version"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MHCA_RUSTC_VERSION={rustc_version}");

    let commit =
        probe("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MHCA_GIT_COMMIT={commit}");
    // Re-stamp when HEAD moves (best-effort; .git may be absent).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
