//! The borrowed event record and its JSONL serialization.
//!
//! An [`Event`] borrows everything — scope, name, and the field slice —
//! so *constructing* one never allocates. Serialization is the sink's
//! problem: [`crate::NoopSink`] never looks at the fields, which is what
//! keeps instrumented hot loops allocation-free when tracing is off.

use std::fmt::Write as _;

/// What an [`Event`] records. Serialized as the `kind` field of each
/// JSONL line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`name` identifies it; the matching end carries the
    /// duration).
    SpanStart,
    /// A span closed; fields include `dur_ns`.
    SpanEnd,
    /// A monotonic counter sample (`value` is the cumulative count).
    Counter,
    /// An instantaneous measurement.
    Gauge,
    /// A histogram summary + sparse bucket dump (see
    /// [`crate::LogHistogram`]).
    Hist,
    /// A failure, with human-readable context in `message`.
    Error,
    /// A campaign progress heartbeat.
    Progress,
}

impl EventKind {
    /// Wire name of the kind, as written into the JSONL `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Hist => "hist",
            EventKind::Error => "error",
            EventKind::Progress => "progress",
        }
    }
}

/// A single typed field value, borrowed where it refers to text.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    /// Unsigned integer (counts, durations in nanoseconds).
    U64(u64),
    /// Floating-point measurement. Non-finite values serialize as `null`.
    F64(f64),
    /// Text, JSON-escaped on serialization.
    Str(&'a str),
    /// Pre-rendered JSON written verbatim (used for sparse histogram
    /// bucket arrays). The caller guarantees it is valid JSON.
    Raw(&'a str),
}

/// One telemetry event. Timestamps are microseconds since the sink's
/// epoch (the moment the campaign's [`crate::Telemetry`] handle was
/// created), so lines within a file are mutually comparable.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Microseconds since the telemetry epoch.
    pub ts_us: u64,
    /// What this event records.
    pub kind: EventKind,
    /// Hierarchical origin, `/`-separated: `""` for campaign level,
    /// `"fig6-quick"` for a scenario, `"fig6-quick/seed3"` for a job.
    pub scope: &'a str,
    /// Event name within the scope (e.g. `"job"`, `"phase.decide"`).
    pub name: &'a str,
    /// Typed payload fields, serialized in order.
    pub fields: &'a [(&'a str, FieldValue<'a>)],
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event<'_> {
    /// Serializes the event as one compact JSON object appended to `out`
    /// (no trailing newline). Keys appear in a fixed order: `ts_us`,
    /// `kind`, `scope`, `name`, then the payload fields.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"ts_us\":{},\"kind\":", self.ts_us);
        push_json_str(out, self.kind.as_str());
        out.push_str(",\"scope\":");
        push_json_str(out, self.scope);
        out.push_str(",\"name\":");
        push_json_str(out, self.name);
        for (key, value) in self.fields {
            out.push(',');
            push_json_str(out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(s) => push_json_str(out, s),
                FieldValue::Raw(s) => out.push_str(s),
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_fixed_header_and_fields_in_order() {
        let fields = [
            ("dur_ns", FieldValue::U64(1500)),
            ("rate", FieldValue::F64(2.5)),
            ("msg", FieldValue::Str("a \"b\"\nc")),
            ("buckets", FieldValue::Raw("[[1,2]]")),
        ];
        let e = Event {
            ts_us: 42,
            kind: EventKind::SpanEnd,
            scope: "s/seed1",
            name: "job",
            fields: &fields,
        };
        let mut out = String::new();
        e.write_json(&mut out);
        assert_eq!(
            out,
            "{\"ts_us\":42,\"kind\":\"span_end\",\"scope\":\"s/seed1\",\"name\":\"job\",\
             \"dur_ns\":1500,\"rate\":2.5,\"msg\":\"a \\\"b\\\"\\nc\",\"buckets\":[[1,2]]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let fields = [("x", FieldValue::F64(f64::NAN))];
        let e = Event {
            ts_us: 0,
            kind: EventKind::Gauge,
            scope: "",
            name: "g",
            fields: &fields,
        };
        let mut out = String::new();
        e.write_json(&mut out);
        assert!(out.contains("\"x\":null"));
    }
}
