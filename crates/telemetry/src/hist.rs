//! Fixed-size log-bucketed latency histogram.
//!
//! The layout is the classic HdrHistogram compromise: values below 16 get
//! exact unit buckets; above that, each power-of-two octave is split into
//! 16 sub-buckets, so the bucket width is always ≤ 1/16 of the value and
//! the relative quantization error is ≤ 6.25 %. Everything lives in one
//! inline array of 976 counters (≈ 8 KiB), so [`LogHistogram::record`]
//! is an index computation and an increment — no branches on growth, no
//! heap, which is what lets the instrumented round loop stay
//! allocation-free (pinned by `tests/alloc_free.rs`).
//!
//! Histograms cross process boundaries as **sparse bucket dumps**
//! (`[[index, count], …]` inside `hist` events) and merge exactly:
//! bucket counts add, so percentiles computed by `mhca-campaign tail`
//! over a merged histogram equal those of a histogram that had seen every
//! sample directly — the only loss is the (bounded) bucket quantization
//! both sides share.

/// Sub-bucket precision: each octave splits into `2^PRECISION_BITS`
/// buckets.
const PRECISION_BITS: usize = 4;
/// Sub-buckets per octave (16).
const SUB: usize = 1 << PRECISION_BITS;
/// Total bucket count covering the full `u64` range: the unit range plus
/// `64 - PRECISION_BITS` octaves of `SUB` sub-buckets each (the top index,
/// for `u64::MAX`, is `((64 - PRECISION_BITS) << PRECISION_BITS) + SUB - 1`).
const BUCKETS: usize = ((64 - PRECISION_BITS) << PRECISION_BITS) + SUB;

/// A fixed-size log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, counts, …). See the module docs for the layout.
#[derive(Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

/// Bucket index of a value (monotone in `v`).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - PRECISION_BITS;
        ((shift + 1) << PRECISION_BITS) + (((v >> shift) as usize) & (SUB - 1))
    }
}

/// Smallest value mapping to bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let block = idx >> PRECISION_BITS;
        let sub = (idx & (SUB - 1)) as u64;
        (SUB as u64 + sub) << (block - 1)
    }
}

/// Width of bucket `idx` (1 for the exact range, doubling per octave).
fn bucket_width(idx: usize) -> u64 {
    if idx < 2 * SUB {
        1
    } else {
        1u64 << ((idx >> PRECISION_BITS) - 1)
    }
}

impl LogHistogram {
    /// An empty histogram. All storage is inline; no heap is touched here
    /// or by any later [`record`](Self::record).
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Forgets all samples (storage retained).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Records one sample. Allocation-free and O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating; exact for direct recording,
    /// bucket-approximated after [`merge_bucket`](Self::merge_bucket)).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` (in percent, 0–100): the representative value
    /// of the bucket holding the ⌈q·n/100⌉-th smallest sample. Accurate to
    /// the bucket width, i.e. within 6.25 % of the true order statistic.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q / 100.0) * self.count as f64).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return Self::representative(idx);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Representative (midpoint) value of bucket `idx`.
    fn representative(idx: usize) -> u64 {
        bucket_floor(idx) + bucket_width(idx) / 2
    }

    /// Folds another histogram in. Bucket counts add exactly, so merged
    /// percentiles equal those of a histogram that saw every sample.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Adds `n` samples directly into bucket `idx` — the ingestion side of
    /// a sparse dump (see [`write_sparse_json`](Self::write_sparse_json)).
    /// Sum/min/max are approximated by the bucket representative; bucket
    /// counts (and hence percentiles) stay exact. Out-of-range indices are
    /// ignored.
    pub fn merge_bucket(&mut self, idx: usize, n: u64) {
        if idx >= BUCKETS || n == 0 {
            return;
        }
        let rep = Self::representative(idx);
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(rep.saturating_mul(n));
        self.min = self.min.min(rep);
        self.max = self.max.max(rep);
    }

    /// Iterates the non-empty buckets as `(index, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Appends the sparse bucket dump as a JSON array `[[index, count],…]`
    /// — the payload of `hist` events, consumed by `mhca-campaign tail`.
    pub fn write_sparse_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('[');
        let mut first = true;
        for (idx, c) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{idx},{c}]");
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // Buckets 0..15 are unit-width, so percentiles are exact.
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.p50(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone (v={v})");
            assert!(idx < BUCKETS);
            assert!(bucket_floor(idx) <= v, "floor exceeds value at v={v}");
            assert!(
                v - bucket_floor(idx) < bucket_width(idx),
                "value outside its bucket at v={v}"
            );
            prev = idx;
        }
        // Every boundary between consecutive buckets is tight.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_floor(idx) + bucket_width(idx),
                bucket_floor(idx + 1),
                "gap between buckets {idx} and {}",
                idx + 1
            );
        }
    }

    #[test]
    fn percentiles_are_within_relative_error() {
        let mut h = LogHistogram::new();
        // 1..=10_000: known order statistics.
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(50.0, 5_000u64), (99.0, 9_900), (99.9, 9_990)] {
            let got = h.percentile(q) as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(
                err <= 0.0625,
                "p{q}: got {got}, exact {exact}, err {err:.4}"
            );
        }
    }

    #[test]
    fn sparse_dump_round_trips_percentiles() {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 2_000_000);
        }
        let mut rebuilt = LogHistogram::new();
        for (idx, c) in h.nonzero_buckets() {
            rebuilt.merge_bucket(idx, c);
        }
        assert_eq!(rebuilt.count(), h.count());
        for q in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(rebuilt.percentile(q), h.percentile(q), "q={q}");
        }
    }

    #[test]
    fn merge_matches_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for v in 0..3_000u64 {
            let sample = v * v % 500_000;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            u.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.min(), u.min());
        assert_eq!(a.max(), u.max());
        for q in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(q), u.percentile(q), "q={q}");
        }
    }

    #[test]
    fn sparse_json_shape() {
        let mut h = LogHistogram::new();
        h.record(3);
        h.record(3);
        h.record(40);
        let mut s = String::new();
        h.write_sparse_json(&mut s);
        assert!(s.starts_with("[["), "got {s}");
        assert!(s.contains("[3,2]"), "got {s}");
    }
}
