//! Hand-rolled tracing + metrics substrate for the reproduction.
//!
//! The stack's standing rule is that infrastructure is vendored or
//! hand-rolled (see `vendor/README.md`): no tokio, no `tracing`, no
//! `metrics` crates. This crate provides the observability layer under
//! that constraint, in four pieces:
//!
//! * [`Event`] / [`TraceSink`] — a borrowed, allocation-free event record
//!   (spans, counters, gauges, histograms, errors) and the sink trait that
//!   receives them. [`NoopSink`] discards, [`JsonlSink`] appends one JSON
//!   object per line to a buffered file, [`MemorySink`] captures lines for
//!   tests.
//! * [`Telemetry`] — a cheaply clonable handle threaded through the
//!   experiment stack. A disabled handle (`Telemetry::disabled()`) is a
//!   `None` inside; every operation on it is a branch and nothing more, so
//!   instrumented hot loops stay allocation-free (pinned by
//!   `tests/alloc_free.rs`).
//! * [`LogHistogram`] — a fixed-size log-bucketed latency histogram
//!   (HdrHistogram-style, 16 sub-buckets per octave, ≤ 6.25 % relative
//!   error). `record` is branch-and-increment; p50/p99/p999 come out at
//!   the end. Histograms serialize sparsely into events and merge exactly,
//!   so `mhca-campaign tail` can reconstruct campaign-wide percentiles
//!   from per-job events.
//! * [`ProgressTracker`] — jobs-done/total, rounds/sec and ETA heartbeats
//!   for `mhca-campaign run --progress`, plus the `progress.json` snapshot
//!   a future resident service can poll.
//!
//! The **standing contract**: telemetry on or off, `RunResult` and every
//! artifact CSV stay byte-identical. Sinks only observe; they never feed
//! back into the experiment. See `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod event;
mod hist;
mod progress;
mod sink;

pub use event::{Event, EventKind, FieldValue};
pub use hist::LogHistogram;
pub use progress::{ProgressSnapshot, ProgressTracker};
pub use sink::{FanoutSink, JsonlSink, MemorySink, NoopSink, Span, Telemetry, TraceSink};

/// Build + host provenance, stamped into `manifest.json` and the
/// `decide_profile` JSON reports so machine-conditional numbers (single
/// core ratios, wall times) are self-describing.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Parallelism available on the host at capture time.
    pub host_threads: usize,
    /// `rustc --version` of the compiler that built this binary.
    pub rustc: &'static str,
    /// Short git commit hash of the built tree (`"unknown"` outside git).
    pub git_commit: &'static str,
}

impl Provenance {
    /// Capture provenance for the running binary. The compiler and commit
    /// are baked in at build time by `build.rs`; only `host_threads` is
    /// probed at runtime.
    pub fn capture() -> Self {
        Provenance {
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rustc: env!("MHCA_RUSTC_VERSION"),
            git_commit: env!("MHCA_GIT_COMMIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_is_nonempty() {
        let p = Provenance::capture();
        assert!(p.host_threads >= 1);
        assert!(!p.rustc.is_empty());
        assert!(!p.git_commit.is_empty());
    }
}
