//! Live campaign progress: heartbeat lines and the `progress.json`
//! snapshot.
//!
//! The tracker distinguishes jobs finished *this session* from jobs
//! already complete in a resumed manifest: rates and the ETA are computed
//! from session throughput only, so resuming a 90 %-done campaign does
//! not report a fantasy rate, while `done/total` still shows campaign-wide
//! completion.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Tracks campaign completion and emits rate-limited heartbeats.
#[derive(Debug)]
pub struct ProgressTracker {
    total: usize,
    done: usize,
    session_done: usize,
    rounds: u64,
    started: Instant,
    last_emit: Option<Instant>,
    min_interval: Duration,
}

/// A point-in-time view of campaign progress.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot {
    /// Jobs complete campaign-wide (including pre-resume).
    pub done: usize,
    /// Total jobs in the campaign.
    pub total: usize,
    /// Decision rounds executed this session.
    pub rounds: u64,
    /// Seconds since the tracker was created.
    pub elapsed_s: f64,
    /// Jobs finished per second, this session.
    pub jobs_per_s: f64,
    /// Decision rounds per second, this session.
    pub rounds_per_s: f64,
    /// Estimated seconds until completion (`None` until a rate exists).
    pub eta_s: Option<f64>,
}

impl ProgressTracker {
    /// A tracker for a campaign of `total` jobs, `already_done` of which
    /// completed in previous sessions. Heartbeats are spaced at least
    /// `min_interval` apart.
    pub fn new(total: usize, already_done: usize, min_interval: Duration) -> Self {
        ProgressTracker {
            total,
            done: already_done.min(total),
            session_done: 0,
            rounds: 0,
            started: Instant::now(),
            last_emit: None,
            min_interval,
        }
    }

    /// Records one finished job and the decision rounds it executed.
    pub fn job_done(&mut self, rounds: u64) {
        self.done = (self.done + 1).min(self.total);
        self.session_done += 1;
        self.rounds += rounds;
    }

    /// Jobs complete campaign-wide.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Whether a heartbeat is due: always on the first call and at
    /// completion, otherwise rate-limited to `min_interval`. Marks the
    /// heartbeat as emitted when returning `true`.
    pub fn should_emit(&mut self) -> bool {
        let due = match self.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.min_interval || self.done == self.total,
        };
        if due {
            self.last_emit = Some(Instant::now());
        }
        due
    }

    /// The current progress snapshot.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed_s = self.started.elapsed().as_secs_f64();
        let (jobs_per_s, rounds_per_s) = if elapsed_s > 0.0 {
            (
                self.session_done as f64 / elapsed_s,
                self.rounds as f64 / elapsed_s,
            )
        } else {
            (0.0, 0.0)
        };
        let remaining = (self.total - self.done) as f64;
        let eta_s = (jobs_per_s > 0.0 && remaining > 0.0).then(|| remaining / jobs_per_s);
        ProgressSnapshot {
            done: self.done,
            total: self.total,
            rounds: self.rounds,
            elapsed_s,
            jobs_per_s,
            rounds_per_s,
            eta_s,
        }
    }
}

/// Renders seconds as a compact human duration (`45s`, `3m05s`, `2h11m`).
fn human_secs(s: f64) -> String {
    let s = s.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

impl ProgressSnapshot {
    /// One-line heartbeat for the terminal, e.g.
    /// `progress: 12/80 jobs (15.0%) · 4.1 jobs/s · 310k rounds/s · ETA 17s`.
    pub fn heartbeat_line(&self) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        let mut line = format!(
            "progress: {}/{} jobs ({pct:.1}%) · {:.1} jobs/s",
            self.done, self.total, self.jobs_per_s
        );
        if self.rounds_per_s >= 1.0 {
            if self.rounds_per_s >= 10_000.0 {
                let _ = write!(line, " · {:.0}k rounds/s", self.rounds_per_s / 1000.0);
            } else {
                let _ = write!(line, " · {:.0} rounds/s", self.rounds_per_s);
            }
        }
        match self.eta_s {
            Some(eta) => {
                let _ = write!(line, " · ETA {}", human_secs(eta));
            }
            None if self.done < self.total => line.push_str(" · ETA --"),
            None => line.push_str(" · done"),
        }
        line
    }

    /// The snapshot as a standalone JSON object — the body of
    /// `progress.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"done\":{},\"total\":{},\"rounds\":{},\"elapsed_s\":{:.3},\
             \"jobs_per_s\":{:.3},\"rounds_per_s\":{:.1},\"eta_s\":",
            self.done, self.total, self.rounds, self.elapsed_s, self.jobs_per_s, self.rounds_per_s
        );
        match self.eta_s {
            Some(eta) => {
                let _ = write!(out, "{:.1}", eta);
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_heartbeat_fires_immediately_then_rate_limits() {
        let mut t = ProgressTracker::new(10, 0, Duration::from_secs(3600));
        assert!(t.should_emit());
        t.job_done(100);
        assert!(!t.should_emit(), "inside min_interval");
        for _ in 0..9 {
            t.job_done(100);
        }
        assert!(t.should_emit(), "completion always emits");
    }

    #[test]
    fn resume_counts_prior_jobs_in_done_but_not_rates() {
        let mut t = ProgressTracker::new(100, 40, Duration::ZERO);
        t.job_done(500);
        let s = t.snapshot();
        assert_eq!(s.done, 41);
        assert_eq!(s.total, 100);
        assert_eq!(s.rounds, 500);
    }

    #[test]
    fn heartbeat_line_and_json_shape() {
        let s = ProgressSnapshot {
            done: 12,
            total: 80,
            rounds: 120_000,
            elapsed_s: 3.0,
            jobs_per_s: 4.0,
            rounds_per_s: 40_000.0,
            eta_s: Some(17.0),
        };
        let line = s.heartbeat_line();
        assert!(line.starts_with("progress: 12/80 jobs (15.0%)"), "{line}");
        assert!(line.contains("ETA 17s"), "{line}");
        let json = s.to_json();
        assert!(json.starts_with("{\"done\":12,\"total\":80,"), "{json}");
        assert!(json.ends_with("\"eta_s\":17.0}"), "{json}");
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_secs(45.0), "45s");
        assert_eq!(human_secs(185.0), "3m05s");
        assert_eq!(human_secs(7890.0), "2h11m");
    }
}
