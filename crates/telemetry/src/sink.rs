//! Trace sinks and the [`Telemetry`] handle threaded through the stack.
//!
//! `Telemetry` is `Option<Arc<…>>` inside: a disabled handle
//! ([`Telemetry::disabled`]) short-circuits every operation on a `None`
//! check, so instrumentation in hot loops costs a branch when tracing is
//! off — no allocation, no clock reads beyond span construction, no
//! formatting. All formatting happens inside the enabled path, after the
//! branch.
//!
//! Sinks must tolerate concurrent emission: campaign workers trace from
//! the shared-queue worker pool. [`JsonlSink`] serializes whole lines
//! under one mutex so `events.jsonl` lines never interleave. Sink write
//! errors are swallowed by design — observability must never fail or
//! perturb the experiment (the byte-identity contract).

use crate::event::{Event, EventKind, FieldValue};
use crate::hist::LogHistogram;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receives telemetry events. Implementations must be thread-safe; they
/// are shared across campaign workers.
pub trait TraceSink: Send + Sync {
    /// Handle one event. Must not panic; errors are the sink's to swallow.
    fn emit(&self, event: &Event<'_>);
    /// Flush any buffering (end of campaign).
    fn flush(&self) {}
}

/// Discards everything. The default when tracing is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn emit(&self, _event: &Event<'_>) {}
}

/// Appends one compact JSON object per line to a buffered file — the
/// `events.jsonl` writer. A single mutex guards the writer *and* a reused
/// serialization buffer, so concurrent emitters produce whole,
/// non-interleaved lines.
pub struct JsonlSink {
    inner: Mutex<(BufWriter<File>, String)>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Self::from_file(File::create(path)?)
    }

    /// Opens the JSONL file at `path` for appending, creating it if
    /// missing. This is what a resumed campaign wants: the trace
    /// accumulates across sessions like the manifest does, so job spans
    /// from an interrupted run and its resume sum to the full campaign.
    /// (`ts_us` restarts at each session's epoch; readers must not
    /// assume global monotonicity.)
    pub fn append(path: &Path) -> std::io::Result<JsonlSink> {
        Self::from_file(File::options().create(true).append(true).open(path)?)
    }

    fn from_file(file: File) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            inner: Mutex::new((BufWriter::new(file), String::with_capacity(256))),
        })
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        let mut guard = self.inner.lock().unwrap();
        let (writer, buf) = &mut *guard;
        buf.clear();
        event.write_json(buf);
        buf.push('\n');
        let _ = writer.write_all(buf.as_bytes());
    }

    fn flush(&self) {
        let mut guard = self.inner.lock().unwrap();
        let _ = guard.0.flush();
    }
}

/// Broadcasts every event to several sinks, in order — e.g. the resident
/// service duplicating a session's stream into its on-disk `events.jsonl`
/// *and* the in-memory watch bus. An empty fanout is a [`NoopSink`].
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl FanoutSink {
    /// A fanout over the given sinks.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn emit(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Captures serialized lines in memory — for tests.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::new();
        event.write_json(&mut line);
        self.lines.lock().unwrap().push(line);
    }
}

struct TelemetryInner {
    sink: Box<dyn TraceSink>,
    epoch: Instant,
}

/// A cheaply clonable, scoped handle for emitting telemetry.
///
/// Scopes are `/`-separated paths built with
/// [`with_scope`](Telemetry::with_scope): the campaign runner hands each
/// job a handle scoped `"<scenario>/seed<k>"`, so every event carries its
/// origin without the emitter knowing the hierarchy.
///
/// A disabled handle makes every method a no-op after one branch;
/// cloning either kind is at most two `Arc` bumps.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
    scope: Arc<str>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("scope", &self.scope)
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing. Every operation is a branch.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            scope: Arc::from(""),
        }
    }

    /// A root handle feeding `sink`. Event timestamps count from this
    /// moment.
    pub fn from_sink(sink: Box<dyn TraceSink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                sink,
                epoch: Instant::now(),
            })),
            scope: Arc::from(""),
        }
    }

    /// Whether events actually go anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This handle's scope path (`""` at the root).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// A child handle with `segment` appended to the scope path. On a
    /// disabled handle this is a plain clone (no formatting).
    pub fn with_scope(&self, segment: &str) -> Telemetry {
        if self.inner.is_none() {
            return self.clone();
        }
        let scope: Arc<str> = if self.scope.is_empty() {
            Arc::from(segment)
        } else {
            Arc::from(format!("{}/{segment}", self.scope))
        };
        Telemetry {
            inner: self.inner.clone(),
            scope,
        }
    }

    /// Emits an event of arbitrary kind with explicit fields.
    pub fn event(&self, kind: EventKind, name: &str, fields: &[(&str, FieldValue<'_>)]) {
        if let Some(inner) = &self.inner {
            let event = Event {
                ts_us: inner.epoch.elapsed().as_micros() as u64,
                kind,
                scope: &self.scope,
                name,
                fields,
            };
            inner.sink.emit(&event);
        }
    }

    /// Emits a cumulative counter sample.
    pub fn counter(&self, name: &str, value: u64) {
        self.event(
            EventKind::Counter,
            name,
            &[("value", FieldValue::U64(value))],
        );
    }

    /// Emits an instantaneous measurement.
    pub fn gauge(&self, name: &str, value: f64) {
        self.event(EventKind::Gauge, name, &[("value", FieldValue::F64(value))]);
    }

    /// Emits an error event with human-readable context.
    pub fn error(&self, name: &str, message: &str) {
        self.event(
            EventKind::Error,
            name,
            &[("message", FieldValue::Str(message))],
        );
    }

    /// Emits a histogram summary (count/min/max/p50/p99/p999) plus the
    /// exact sparse bucket dump, so downstream consumers can re-merge.
    /// Empty histograms are skipped.
    pub fn hist(&self, name: &str, h: &LogHistogram) {
        if self.inner.is_none() || h.is_empty() {
            return;
        }
        let mut buckets = String::with_capacity(64);
        h.write_sparse_json(&mut buckets);
        self.event(
            EventKind::Hist,
            name,
            &[
                ("count", FieldValue::U64(h.count())),
                ("min", FieldValue::U64(h.min())),
                ("max", FieldValue::U64(h.max())),
                ("p50", FieldValue::U64(h.p50())),
                ("p99", FieldValue::U64(h.p99())),
                ("p999", FieldValue::U64(h.p999())),
                ("buckets", FieldValue::Raw(&buckets)),
            ],
        );
    }

    /// Opens a span: emits `span_start` now and `span_end` (with
    /// `dur_ns`) when the returned guard ends or drops. On a disabled
    /// handle the guard is inert.
    pub fn span(&self, name: &'static str) -> Span {
        self.event(EventKind::SpanStart, name, &[]);
        Span {
            telemetry: self.clone(),
            name,
            start: Instant::now(),
            ended: false,
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Guard returned by [`Telemetry::span`]. Emits `span_end` with the
/// elapsed `dur_ns` exactly once — on [`end`](Span::end),
/// [`end_with`](Span::end_with), or drop.
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Instant,
    ended: bool,
}

impl Span {
    fn emit_end(&mut self, extra: &[(&str, FieldValue<'_>)]) {
        if self.ended {
            return;
        }
        self.ended = true;
        if !self.telemetry.enabled() {
            return;
        }
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        // dur_ns first, then caller fields.
        let mut fields: Vec<(&str, FieldValue<'_>)> = Vec::with_capacity(1 + extra.len());
        fields.push(("dur_ns", FieldValue::U64(dur_ns)));
        fields.extend_from_slice(extra);
        self.telemetry.event(EventKind::SpanEnd, self.name, &fields);
    }

    /// Closes the span now.
    pub fn end(mut self) {
        self.emit_end(&[]);
    }

    /// Closes the span with extra fields on the `span_end` event (e.g.
    /// `status`, per-job totals).
    pub fn end_with(mut self, extra: &[(&str, FieldValue<'_>)]) {
        self.emit_end(extra);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_end(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.counter("x", 1);
        t.gauge("y", 2.0);
        let span = t.span("s");
        span.end();
        let child = t.with_scope("a");
        assert!(!child.enabled());
        assert_eq!(child.scope(), "");
    }

    #[test]
    fn scopes_nest_with_slashes() {
        let t = Telemetry::from_sink(Box::new(MemorySink::new()));
        let a = t.with_scope("fig6");
        let b = a.with_scope("seed3");
        assert_eq!(b.scope(), "fig6/seed3");
    }

    #[test]
    fn memory_sink_captures_span_pairs_and_counters() {
        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl TraceSink for Fwd {
            fn emit(&self, e: &Event<'_>) {
                self.0.emit(e);
            }
        }
        let t = Telemetry::from_sink(Box::new(Fwd(sink.clone())));
        let job = t.with_scope("scen/seed1");
        let span = job.span("job");
        job.counter("rounds", 7);
        span.end_with(&[("status", FieldValue::Str("ok"))]);
        let mut h = LogHistogram::new();
        h.record(10);
        job.hist("phase.decide", &h);
        t.flush();

        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"kind\":\"span_start\"") && lines[0].contains("\"job\""));
        assert!(lines[1].contains("\"kind\":\"counter\"") && lines[1].contains("\"value\":7"));
        assert!(lines[2].contains("\"kind\":\"span_end\"") && lines[2].contains("\"dur_ns\":"));
        assert!(lines[2].contains("\"status\":\"ok\""));
        assert!(lines[3].contains("\"kind\":\"hist\"") && lines[3].contains("\"buckets\":[["));
        for line in &lines {
            assert!(line.contains("\"scope\":\"scen/seed1\""));
        }
    }

    #[test]
    fn empty_histograms_are_not_emitted() {
        let sink = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl TraceSink for Fwd {
            fn emit(&self, e: &Event<'_>) {
                self.0.emit(e);
            }
        }
        let t = Telemetry::from_sink(Box::new(Fwd(sink.clone())));
        t.hist("empty", &LogHistogram::new());
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("mhca_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let t = Telemetry::from_sink(Box::new(JsonlSink::create(&path).unwrap()));
        t.counter("a", 1);
        t.counter("b", 2);
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
