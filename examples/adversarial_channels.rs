//! The paper's Section VII future-work scenario: channel gains generated
//! by an oblivious adversary instead of an i.i.d. process.
//!
//! Half the channels are square waves (good ↔ bad every 400 slots), so a
//! stationary learner that locks onto early observations keeps paying for
//! stale estimates. The discounted CS-UCB extension re-explores and
//! tracks the switches.
//!
//! Run with: `cargo run --release --example adversarial_channels`

use mhca::bandit::policies::{CsUcb, DiscountedCsUcb, IndexPolicy};
use mhca::channels::{
    adversarial::Switching, process::TruncatedGaussian, ChannelMatrix, ChannelProcess,
};
use mhca::core::{
    runner::{run_policy, Algorithm2Config},
    Network,
};
use mhca::graph::unit_disk;
use rand::{rngs::StdRng, SeedableRng};

fn adversarial_network(n: usize, m: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, layout) = unit_disk::random_with_average_degree(n, 3.5, &mut rng);
    let processes: Vec<Box<dyn ChannelProcess>> = (0..n * m)
        .map(|v| {
            if v % 2 == 0 {
                // Square wave: looks great for 400 slots, then collapses.
                Box::new(Switching::new(1200.0, 150.0, 400)) as Box<dyn ChannelProcess>
            } else {
                // Honest stationary channel of middling quality.
                Box::new(TruncatedGaussian::symmetric(700.0, 70.0))
            }
        })
        .collect();
    let channels = ChannelMatrix::from_processes(n, m, processes, seed);
    Network::from_parts(g, channels, Some(layout))
}

fn main() {
    let (n, m) = (15, 4);
    let net = adversarial_network(n, m, 7);
    let horizon = 4000;
    let cfg = Algorithm2Config::default().with_horizon(horizon);

    println!("adversarial workload: {n} users x {m} channels, {horizon} slots,");
    println!("even channels switch 1200 <-> 150 kbps every 400 slots\n");

    let k = net.n_vertices();
    let runs: Vec<(&str, Box<dyn IndexPolicy>)> = vec![
        ("stationary cs-ucb", Box::new(CsUcb::new(2.0))),
        (
            "discounted cs-ucb (gamma=0.995)",
            Box::new(DiscountedCsUcb::new(k, 0.995, 2.0)),
        ),
    ];
    println!(
        "{:>34} {:>16} {:>16}",
        "policy", "observed (kbps)", "effective (kbps)"
    );
    for (label, mut policy) in runs {
        let run = run_policy(&net, &cfg, policy.as_mut());
        println!(
            "{:>34} {:>16.0} {:>16.0}",
            label, run.average_observed_kbps, run.average_effective_kbps
        );
    }
    println!();
    println!("The discounted variant forgets pre-switch observations and");
    println!("re-balances onto the honest channels during bad phases, so it");
    println!("sustains higher long-run throughput under the square waves.");
}
