//! Writing a custom experiment and a custom streaming observer against
//! the unified engine (`mhca_core::experiment`).
//!
//! The experiment ("loss resilience") asks a question no paper figure
//! covers: how much expected throughput does Algorithm 2 lose as the
//! control channel gets lossier? It sweeps loss rates over the same
//! seeded instance and emits one headline metric per rate.
//!
//! The observer ("strategy churn") measures something no `RunResult`
//! field carries — the fraction of strategy decisions that changed the
//! winner set — by streaming over every round via `RoundRecord`.
//!
//! Run with: `cargo run --release --example custom_experiment`

use mhca::core::experiment::{
    run_experiment, Experiment, ExperimentCtx, ExperimentData, ExperimentOutput, MetricTable,
    ObserverSet, RoundObserver, RoundRecord, ScenarioShape,
};
use mhca::core::experiments::PolicyRunConfig;
use mhca::core::runner::{run_policy_observed, Algorithm2Config};
use mhca::core::{DistributedPtasConfig, Network};
use mhca::sim::LossSpec;

/// Counts how often the decided winner set changes between consecutive
/// strategy decisions — high churn late in a run means the policy has not
/// settled on a strategy.
#[derive(Default)]
struct StrategyChurnObserver {
    last_winners: Vec<usize>,
    decisions: u64,
    changes: u64,
}

impl RoundObserver for StrategyChurnObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        if self.decisions > 0 && self.last_winners != record.winners {
            self.changes += 1;
        }
        self.last_winners.clear();
        self.last_winners.extend_from_slice(record.winners);
        self.decisions += 1;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push(
            "strategy_churn",
            self.changes as f64 / self.decisions.max(1) as f64,
        );
        t
    }
}

/// Expected throughput as a function of control-channel loss, on one
/// seeded instance.
struct LossResilienceExperiment {
    base: PolicyRunConfig,
    loss_probs: Vec<f64>,
}

impl Experiment for LossResilienceExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "loss-resilience",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = PolicyRunConfig {
            seed: ctx.seed,
            ..self.base.clone()
        };
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, ctx.seed);
        let mut metrics = MetricTable::new();
        let mut last = None;
        for &prob in &self.loss_probs {
            let dcfg = DistributedPtasConfig::default()
                .with_r(cfg.r)
                .with_max_minirounds(Some(cfg.minirounds))
                .with_loss_spec(LossSpec::lossy(prob, ctx.seed));
            let acfg = Algorithm2Config::default()
                .with_horizon(cfg.horizon)
                .with_decision(dcfg)
                .with_seed(ctx.seed);
            let mut policy = cfg.policy.build(&net);
            let run = run_policy_observed(&net, &acfg, policy.as_mut(), &mut ctx.observers);
            metrics.push(
                format!("expected_kbps_loss{:02}", (prob * 100.0) as u32),
                run.average_expected_kbps,
            );
            last = Some(run);
        }
        ExperimentOutput {
            data: ExperimentData::PolicyRun {
                cfg,
                run: last.expect("at least one loss rate"),
            },
            metrics,
        }
    }
}

fn main() {
    let exp = LossResilienceExperiment {
        base: PolicyRunConfig {
            n: 12,
            m: 3,
            horizon: 300,
            r: 1,
            ..PolicyRunConfig::default()
        },
        loss_probs: vec![0.0, 0.1, 0.25],
    };

    let mut observers = ObserverSet::new();
    observers.register("churn", Box::<StrategyChurnObserver>::default());
    let out = run_experiment(&exp, 42, observers);

    println!("loss resilience of CS-UCB (12 users x 3 channels, 300 slots):");
    for (name, value) in out.metrics.rows() {
        println!("  {name:<28} {value:.2}");
    }
    println!();
    println!("expected shape: throughput degrades gracefully as control-");
    println!("channel loss rises, and churn stays well below 1.0 (the");
    println!("policy settles on a strategy instead of thrashing).");
}
