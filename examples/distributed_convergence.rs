//! Fig. 6 scenario: watch Algorithm 3 converge over mini-rounds.
//!
//! Reproduces the paper's observation that on random networks the summed
//! weight of the output independent sets converges within ~4 mini-rounds,
//! regardless of the network size (Theorem 4).
//!
//! Run with: `cargo run --release --example distributed_convergence`

use mhca::core::experiment::{run_experiment, ExperimentData, Fig6Experiment};
use mhca::core::experiments::Fig6Config;
use mhca::core::ObserverSet;
use mhca::graph::TopologySpec;

fn main() {
    let cfg = Fig6Config {
        sizes: vec![(50, 5), (100, 5), (50, 10), (100, 10)],
        topology: TopologySpec::UnitDisk { avg_degree: 6.0 },
        r: 2,
        minirounds: 10,
        ..Fig6Config::default()
    };
    println!(
        "Algorithm 3 convergence (r = {}, topology = {}):",
        cfg.r,
        cfg.topology.label()
    );
    println!();
    let seed = cfg.seed;
    let out = run_experiment(&Fig6Experiment(cfg), seed, ObserverSet::new());
    let ExperimentData::Fig6 { series, .. } = out.data else {
        unreachable!("Fig6Experiment yields Fig6 data");
    };

    // Header.
    print!("{:>10}", "mini-round");
    for s in &series {
        print!("{:>12}", format!("{}x{}", s.n, s.m));
    }
    println!();

    let rounds = series[0].weight_by_miniround.len();
    for i in 0..rounds {
        print!("{:>10}", i + 1);
        for s in &series {
            print!("{:>12.0}", s.weight_by_miniround[i]);
        }
        println!();
    }

    println!();
    for s in &series {
        println!(
            "{}x{}: all vertices marked after mini-round {}",
            s.n, s.m, s.converged_at
        );
    }
}
