//! Fig. 5 scenario: the linear-network worst case for strategy decision.
//!
//! On a line with strictly decreasing weights only one region resolves per
//! mini-round, so running Algorithm 3 to completion needs Θ(N) mini-rounds
//! — the motivation for capping at a constant `D` (Theorem 4).
//!
//! Run with: `cargo run --release --example linear_worstcase`

use mhca::core::experiment::{run_experiment, ExperimentData, Fig5Experiment};
use mhca::core::experiments::Fig5Config;
use mhca::core::ObserverSet;

fn main() {
    let cfg = Fig5Config {
        ns: vec![10, 20, 40, 80, 160],
        r: 1,
    };
    let out = run_experiment(&Fig5Experiment(cfg), 0, ObserverSet::new());
    let ExperimentData::Fig5(points) = out.data else {
        unreachable!("Fig5Experiment yields Fig5 data");
    };
    println!("Algorithm 3 on a line with decreasing weights (M = 1, r = 1):");
    println!("{:>6} {:>12}", "N", "mini-rounds");
    for p in points {
        println!("{:>6} {:>12}", p.n, p.minirounds_used);
    }
    println!();
    println!("Mini-rounds grow linearly with N — the Fig. 5 worst case.");
    println!("Random networks instead converge in ~4 mini-rounds (see the");
    println!("distributed_convergence example), which is why Algorithm 2");
    println!("caps the decision at a constant D mini-rounds.");
}
