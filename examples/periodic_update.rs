//! Fig. 8 scenario: effective throughput under periodic (stale-weight)
//! updates.
//!
//! Updating weights (and re-deciding the strategy) only every `y` slots
//! trades estimate freshness for airtime: the decision overhead amortizes
//! over the period, pushing effective throughput toward the ideal
//! (1/2 → 9/10 → 19/20 → 39/40 of ideal for y = 1, 5, 10, 20).
//!
//! Run with: `cargo run --release --example periodic_update`
//! (Pass `--full` as an argument for the paper-scale 100x10 network.)

use mhca::core::experiment::{run_experiment, ExperimentData, Fig8Experiment};
use mhca::core::experiments::Fig8Config;
use mhca::core::ObserverSet;
use mhca::graph::TopologySpec;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        Fig8Config::default() // 100 users × 10 channels, 1000 updates per y
    } else {
        Fig8Config {
            n: 40,
            m: 5,
            topology: TopologySpec::UnitDisk { avg_degree: 5.0 },
            update_periods: vec![1, 5, 10, 20],
            updates_per_run: 200,
            ..Fig8Config::default()
        }
    };
    println!(
        "Fig. 8 workload: {} users x {} channels, {} updates per run{}",
        cfg.n,
        cfg.m,
        cfg.updates_per_run,
        if full {
            " (paper scale)"
        } else {
            " (reduced; use --full for 100x10)"
        }
    );
    println!();
    println!(
        "{:>4} {:>9} {:>14} {:>14} {:>14} {:>14}",
        "y", "slots", "alg2 actual", "alg2 estimate", "llr actual", "llr estimate"
    );
    let seed = cfg.seed;
    let out = run_experiment(&Fig8Experiment(cfg), seed, ObserverSet::new());
    let ExperimentData::Fig8(runs) = out.data else {
        unreachable!("Fig8Experiment yields Fig8 data");
    };
    for run in runs {
        println!(
            "{:>4} {:>9} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            run.y,
            run.horizon,
            run.algorithm2.avg_actual_throughput.last().unwrap(),
            run.algorithm2.avg_estimated_throughput.last().unwrap(),
            run.llr.avg_actual_throughput.last().unwrap(),
            run.llr.avg_estimated_throughput.last().unwrap(),
        );
    }
    println!();
    println!("Expected shape (paper Fig. 8): actual throughput grows with y;");
    println!("algorithm2's estimate tracks its actual closely, while LLR's");
    println!("estimate overshoots its actual by a wide margin.");
}
