//! Quickstart: build a random multi-hop network, learn channel qualities
//! with the paper's policy, and compare against the genie optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use mhca::bandit::policies::CsUcb;
use mhca::core::{
    runner::{run_policy, Algorithm2Config},
    Network,
};

fn main() {
    // A connected 12-user, 3-channel cognitive-radio network with average
    // conflict degree 3.5 — small enough to brute-force the optimum.
    let net = Network::random_connected(12, 3, 3.5, 0.1, 2024);
    println!(
        "network: N={} users, M={} channels, K={} arms, |E(G)|={}",
        net.n_nodes(),
        net.n_channels(),
        net.n_vertices(),
        net.g().edge_count()
    );

    // Ground truth: the exact MWIS of H under the true means (Eq. (2)).
    let opt = net.optimal();
    println!(
        "static optimum R1 = {:.2} kbps ({} transmitters)",
        opt.weight,
        opt.vertices.len()
    );

    // Algorithm 2 with the paper's CS-UCB learning policy, 2000 slots.
    let cfg = Algorithm2Config::default()
        .with_horizon(2000)
        .with_optimal_kbps(opt.weight);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));

    println!("policy: {}", run.policy);
    println!(
        "average expected throughput: {:.2} kbps ({:.1}% of optimum)",
        run.average_expected_kbps,
        100.0 * run.average_expected_kbps / opt.weight
    );
    println!(
        "average effective throughput (theta = t_d/t_a scaled): {:.2} kbps",
        run.average_effective_kbps
    );
    println!(
        "final practical regret per round: {:.2} kbps",
        run.practical_regret.last().copied().unwrap_or(f64::NAN)
    );
    println!(
        "communication: {} decisions, {} relay broadcasts, {} mini-timeslots",
        run.comm.decisions, run.comm.transmissions, run.comm.timeslots
    );

    let final_strategy = net.strategy_from_is(&run.final_strategy_vertices);
    println!("final strategy:");
    for (node, ch) in final_strategy.assignments() {
        println!("  user {:>2} -> channel {}", node.0, ch.0);
    }
}
