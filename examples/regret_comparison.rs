//! Fig. 7 scenario: practical regret and β-regret of the paper's policy
//! versus the LLR baseline on a small connected network whose optimum is
//! computed exactly by branch-and-bound.
//!
//! Run with: `cargo run --release --example regret_comparison`

use mhca::core::experiment::{run_experiment, ExperimentData, Fig7Experiment};
use mhca::core::experiments::Fig7Config;
use mhca::core::ObserverSet;

fn main() {
    let cfg = Fig7Config::default(); // 15 users × 3 channels, 1000 slots
    println!(
        "Fig. 7 workload: {} users x {} channels, horizon {} slots",
        cfg.n, cfg.m, cfg.horizon
    );
    let seed = cfg.seed;
    let result = run_experiment(&Fig7Experiment(cfg), seed, ObserverSet::new());
    let ExperimentData::Fig7(out) = result.data else {
        unreachable!("Fig7Experiment yields Fig7 data");
    };
    println!(
        "exact optimum R1 = {:.2} kbps (paper instance: 7282.90)",
        out.optimal_kbps
    );
    println!("beta = theta*alpha = {:.3}", out.beta);
    println!();
    println!(
        "{:>6} {:>16} {:>16} {:>18} {:>18}",
        "slot", "alg2 regret", "llr regret", "alg2 beta-regret", "llr beta-regret"
    );
    let n = out.algorithm2.practical_regret.len();
    for t in (0..n).step_by((n / 10).max(1)).chain([n - 1]) {
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>18.1} {:>18.1}",
            t + 1,
            out.algorithm2.practical_regret[t],
            out.llr.practical_regret[t],
            out.algorithm2.practical_beta_regret[t],
            out.llr.practical_beta_regret[t],
        );
    }
    println!();
    let a = out.algorithm2.practical_regret.last().unwrap();
    let l = out.llr.practical_regret.last().unwrap();
    println!(
        "final practical regret: algorithm2 {:.1} vs LLR {:.1} kbps ({})",
        a,
        l,
        if a < l {
            "algorithm2 wins, as in the paper"
        } else {
            "LLR ahead on this seed"
        }
    );
    println!(
        "final beta-regret: algorithm2 {:.1}, LLR {:.1} (negative = beats the 1/beta target)",
        out.algorithm2.practical_beta_regret.last().unwrap(),
        out.llr.practical_beta_regret.last().unwrap()
    );
}
