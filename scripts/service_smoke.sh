#!/usr/bin/env bash
# Service resilience smoke (CI): serve on a unix socket, submit a
# steppable scenario, checkpoint it mid-seed, kill -9 the daemon,
# restart on the same state directory, resume, and verify the final
# artifacts are byte-identical to an uninterrupted batch run.
#
# Usage: scripts/service_smoke.sh  (expects target/release/mhca-campaign;
# override with BIN=... DIR=...)
set -euo pipefail

BIN=${BIN:-target/release/mhca-campaign}
DIR=${DIR:-target/service-smoke}
SOCK="$DIR/daemon.sock"
STATE="$DIR/state"
OUT="$DIR/out"

rm -rf "$DIR"
mkdir -p "$DIR"

# Long enough that the checkpoint request lands mid-seed, short enough
# for CI: 2 seeds x 200k slots with a strategy decision every 20 slots.
SCENARIO='{"name":"svc-smoke","spec":{"kind":"policy-run","n":10,"m":3,"horizon":200000,"update_period":20},"seeds":{"start":7,"count":2},"observers":["comm-totals","throughput"]}'

wait_for_socket() {
  for _ in $(seq 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "socket $SOCK never appeared" >&2
  return 1
}

"$BIN" serve --socket "$SOCK" --state-dir "$STATE" > "$DIR/serve1.log" 2>&1 &
SERVE=$!
wait_for_socket

"$BIN" client --socket "$SOCK" \
  "{\"cmd\":\"submit\",\"name\":\"svc-smoke\",\"out_dir\":\"$OUT\",\"scenario\":$SCENARIO}" \
  | grep -q '"ok":true'

# Mid-job policy-state checkpoint: the reply carries the durable path.
"$BIN" client --socket "$SOCK" '{"cmd":"checkpoint","session":"svc-smoke"}' \
  | tee "$DIR/checkpoint-reply.json" | grep -q '"ok":true'
python3 - "$STATE/svc-smoke.json" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
assert record["checkpoint"] is not None, "no mid-seed checkpoint persisted"
state = record["checkpoint"]["state"]
assert state["format"] == "mhca-checkpoint-v1", state.get("format")
assert "runner" in state and "observers" in state, sorted(state)
EOF

# Kill the daemon without ceremony; the checkpoint is all that survives.
# kill -9 leaves the stale socket file behind — remove it so the socket's
# reappearance below really means the restarted daemon is listening
# (serve also unlinks a stale socket itself before binding).
kill -9 "$SERVE"
wait "$SERVE" 2>/dev/null || true
rm -f "$SOCK"

# Restart on the same state: the session must come back resumable.
"$BIN" serve --socket "$SOCK" --state-dir "$STATE" > "$DIR/serve2.log" 2>&1 &
SERVE=$!
wait_for_socket
grep -q "1 resumable session(s)" "$DIR/serve2.log"
"$BIN" client --socket "$SOCK" '{"cmd":"status","session":"svc-smoke"}' \
  | grep -q '"status":"paused"'
"$BIN" client --socket "$SOCK" '{"cmd":"resume","session":"svc-smoke"}' \
  | grep -q '"ok":true'

for _ in $(seq 600); do
  "$BIN" client --socket "$SOCK" '{"cmd":"status","session":"svc-smoke"}' \
    > "$DIR/status.json" || true
  grep -q '"status":"done"' "$DIR/status.json" && break
  if grep -Eq '"status":"(failed|cancelled)"' "$DIR/status.json"; then
    cat "$DIR/status.json" >&2
    exit 1
  fi
  sleep 0.5
done
grep -q '"status":"done"' "$DIR/status.json"

# The watch stream replays the post-restart events: it must carry the
# mid-seed resume marker and at least one streamed metric event.
"$BIN" client --socket "$SOCK" '{"cmd":"watch","session":"svc-smoke"}' \
  > "$DIR/watch.jsonl"
grep -q '"resumed":true' "$DIR/watch.jsonl"
grep -Eq '"kind":"(counter|hist|span_end)"' "$DIR/watch.jsonl"

"$BIN" client --socket "$SOCK" '{"cmd":"shutdown"}' | grep -q '"shutdown":true'
wait "$SERVE" 2>/dev/null || true
[ ! -S "$SOCK" ]

# Resume parity: the killed-and-resumed service artifacts must be
# byte-identical to an uninterrupted batch run of the same scenario.
echo "$SCENARIO" > "$DIR/scenario.json"
"$BIN" run --scenario-file "$DIR/scenario.json" --out "$DIR/batch" > /dev/null
cmp "$OUT/seed7.csv" "$DIR/batch/svc-smoke/seed7.csv"
cmp "$OUT/seed8.csv" "$DIR/batch/svc-smoke/seed8.csv"

echo "service smoke: OK"
