//! # mhca — almost optimal channel access in multi-hop networks
//!
//! A full Rust reproduction of *"Almost Optimal Channel Access in Multi-Hop
//! Networks With Unknown Channel Variables"* (Zhou, Li, Li, Liu, Li, Yin —
//! ICDCS 2014 / arXiv:1308.4751): distributed learning of channel qualities
//! in a multi-hop cognitive-radio network, formulated as a combinatorial
//! multi-armed bandit whose oracle is a distributed robust PTAS for maximum
//! weighted independent set on the extended conflict graph.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `mhca-graph` | unit-disk conflict graphs `G`, extended conflict graph `H`, strategies |
//! | [`channels`] | `mhca-channels` | stochastic/adversarial channel processes, the paper's rate classes |
//! | [`mwis`] | `mhca-mwis` | exact / greedy / robust-PTAS MWIS solvers |
//! | [`sim`] | `mhca-sim` | hop-limited flooding engine with complexity counters |
//! | [`bandit`] | `mhca-bandit` | CS-UCB, LLR, joint-UCB1, regret accounting, bound evaluators |
//! | [`core`] | `mhca-core` | Algorithm 2/3, Table II time model, figure harnesses |
//! | [`telemetry`] | `mhca-telemetry` | trace sinks, spans, log-bucketed latency histograms, progress |
//!
//! # Quickstart
//!
//! ```
//! use mhca::core::{Network, runner::{run_policy, Algorithm2Config}};
//! use mhca::bandit::policies::CsUcb;
//!
//! // 10 users, 3 channels, average conflict degree 3, seeded.
//! let net = Network::random(10, 3, 3.0, 0.1, 42);
//! let cfg = Algorithm2Config::default().with_horizon(100);
//! let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
//! println!("average effective throughput: {:.1} kbps", run.average_effective_kbps);
//! # assert!(run.average_effective_kbps > 0.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use mhca_bandit as bandit;
pub use mhca_channels as channels;
pub use mhca_core as core;
pub use mhca_graph as graph;
pub use mhca_mwis as mwis;
pub use mhca_sim as sim;
pub use mhca_telemetry as telemetry;
