//! Integration tests of the adversarial-channel extension (paper §VII):
//! the full Algorithm 2 loop against oblivious non-stationary channels.

use mhca::bandit::policies::{CsUcb, DiscountedCsUcb};
use mhca::channels::{
    adversarial::Switching, process::TruncatedGaussian, ChannelMatrix, ChannelProcess,
};
use mhca::core::{
    runner::{run_policy, Algorithm2Config},
    Network,
};
use mhca::graph::unit_disk;
use rand::{rngs::StdRng, SeedableRng};

/// Network where even-indexed vertices carry square-wave channels and odd
/// ones honest stationary channels.
fn switching_network(n: usize, m: usize, dwell: u64, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, layout) = unit_disk::random_with_average_degree(n, 3.0, &mut rng);
    let processes: Vec<Box<dyn ChannelProcess>> = (0..n * m)
        .map(|v| {
            if v % 2 == 0 {
                Box::new(Switching::new(1200.0, 150.0, dwell)) as Box<dyn ChannelProcess>
            } else {
                Box::new(TruncatedGaussian::symmetric(700.0, 70.0))
            }
        })
        .collect();
    Network::from_parts(
        g,
        ChannelMatrix::from_processes(n, m, processes, seed),
        Some(layout),
    )
}

#[test]
fn adversarial_runs_complete_and_produce_throughput() {
    let net = switching_network(10, 3, 200, 1);
    let cfg = Algorithm2Config::default().with_horizon(600);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    assert_eq!(run.slots, 600);
    assert!(run.average_observed_kbps > 0.0);
    // Feasibility holds under adversarial gains too.
    let s = net.strategy_from_is(&run.final_strategy_vertices);
    assert!(net.h().is_feasible(&s));
}

#[test]
fn discounting_helps_under_switching_channels() {
    // Across a few seeds, the discounted variant should win on average —
    // it forgets pre-switch observations; the stationary policy's clamped
    // bonus stops exploring and keeps stale estimates.
    let mut stationary_total = 0.0;
    let mut discounted_total = 0.0;
    for seed in 0..3 {
        let net = switching_network(12, 4, 300, 10 + seed);
        let cfg = Algorithm2Config::default()
            .with_horizon(2400)
            .with_seed(seed);
        let s = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        let d = run_policy(
            &net,
            &cfg,
            &mut DiscountedCsUcb::new(net.n_vertices(), 0.995, 2.0),
        );
        stationary_total += s.average_observed_kbps;
        discounted_total += d.average_observed_kbps;
    }
    assert!(
        discounted_total > stationary_total,
        "discounted {discounted_total} should beat stationary {stationary_total}"
    );
}

#[test]
fn stationary_channels_leave_discounting_roughly_neutral() {
    // On i.i.d. channels, mild discounting should not collapse throughput
    // (it only forgets slowly); sanity check against over-aggressive decay
    // regressions.
    let net = Network::random(10, 3, 3.0, 0.1, 5);
    let cfg = Algorithm2Config::default().with_horizon(800);
    let s = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let d = run_policy(
        &net,
        &cfg,
        &mut DiscountedCsUcb::new(net.n_vertices(), 0.999, 2.0),
    );
    assert!(
        d.average_expected_kbps > 0.8 * s.average_expected_kbps,
        "discounted {} collapsed vs stationary {}",
        d.average_expected_kbps,
        s.average_expected_kbps
    );
}
