//! Allocation accounting for the steady-state round loop.
//!
//! The PR-1 tentpole claims the lossless hot path — flood delivery and the
//! distributed strategy decision — performs **no heap allocation after
//! warm-up**. These tests pin that down with a counting global allocator:
//! warm the component up, then assert that further identical operations
//! allocate nothing.
//!
//! The counting allocator wraps `System`; its `unsafe` is confined to this
//! test binary (every library crate is `#![forbid(unsafe_code)]`).
//! Measurements take the minimum over several attempts so a stray
//! harness-thread allocation cannot produce a false positive, and the
//! measured tests serialize on a mutex so they never overlap.

use mhca::bandit::policies::{CsUcb, IndexPolicy};
use mhca::core::{DistributedPtas, DistributedPtasConfig, Network};
use mhca::sim::{Flood, FloodEngine, Received};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes the measured sections across test threads.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Allocation count of `f`, minimized over `attempts` runs (the minimum
/// filters out one-off interference from harness threads).
fn min_allocs(attempts: usize, mut f: impl FnMut()) -> u64 {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        best = best.min(after - before);
    }
    best
}

#[test]
fn lossless_flood_delivery_is_allocation_free_after_warmup() {
    let net = Network::random(60, 3, 4.0, 0.1, 5);
    let graph = net.h().graph();
    let r = DistributedPtasConfig::default().r;
    let floods: Vec<Flood<()>> = (0..net.n_vertices())
        .step_by(7)
        .map(|v| Flood {
            origin: v,
            ttl: 2 * r + 1,
            payload: (),
        })
        .collect();
    let mut engine = FloodEngine::new(graph);
    let mut inboxes: Vec<Vec<Received<()>>> = Vec::new();
    // Warm-up: builds the ball table and sizes every inbox.
    engine.deliver_into(&floods, &mut inboxes);

    let allocs = min_allocs(3, || {
        for _ in 0..20 {
            engine.deliver_into(&floods, &mut inboxes);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state deliver_into must not allocate (counted {allocs})"
    );
}

#[test]
fn strategy_decision_is_allocation_free_after_warmup() {
    let net = Network::random(40, 3, 4.0, 0.1, 9);
    let weights = net.channels().means();
    let mut ptas = DistributedPtas::new(net.h(), DistributedPtasConfig::default());
    let mut outcome = Default::default();
    // Warm-up: grows the determination pools, MWIS workspace, and outcome
    // vectors to their steady-state sizes.
    for _ in 0..3 {
        ptas.decide_into(&weights, &mut outcome);
    }

    let allocs = min_allocs(3, || {
        for _ in 0..10 {
            ptas.decide_into(&weights, &mut outcome);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state decide_into must not allocate (counted {allocs})"
    );
}

#[test]
fn incremental_decide_into_is_allocation_free_with_varying_weights() {
    // The incremental dirty-ball decide path reuses the blocker table,
    // epoch-stamped dirty buffer, and changed list across decisions. Vary
    // the weights each call so the dirty-set shape, leader counts, and
    // per-mini-round series lengths all change between decisions — the
    // exact situation where a clear()-vs-truncate mistake or an
    // under-grown pool would allocate. The weight vectors are prepared up
    // front and the warm-up runs the same cycle, so the measured section
    // is pure steady state.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let net = Network::random(50, 3, 4.5, 0.1, 13);
    let mut rng = StdRng::seed_from_u64(13);
    let cycle: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            (0..net.n_vertices())
                .map(|_| rng.gen_range(0.05..1.0))
                .collect()
        })
        .collect();
    let cfg = DistributedPtasConfig::default().with_max_minirounds(None);
    assert_eq!(cfg.loss_prob, 0.0, "must exercise the incremental path");
    let mut ptas = DistributedPtas::new(net.h(), cfg);
    let mut outcome = Default::default();
    for w in cycle.iter().chain(cycle.iter()) {
        ptas.decide_into(w, &mut outcome);
    }

    let allocs = min_allocs(3, || {
        for w in &cycle {
            ptas.decide_into(w, &mut outcome);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state incremental decide_into must not allocate (counted {allocs})"
    );
}

#[test]
fn tiled_decide_into_is_allocation_free_with_varying_weights() {
    // The partition-parallel decide in its deterministic single-thread
    // configuration (`threads: 1` — the inline tile loop; spawning scoped
    // threads allocates by nature, so the threaded spelling is exempt).
    // Per-tile scratch (leader/pending/candidate pools, solver
    // workspaces), the seeding-sweep snapshot, and the changed-rank
    // buffer must all reach steady state during warm-up and be reused
    // verbatim after, across weight changes that reshape every tile's
    // leader sets and pending lists.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let net = Network::random(50, 3, 4.5, 0.1, 13);
    let mut rng = StdRng::seed_from_u64(29);
    let cycle: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            (0..net.n_vertices())
                .map(|_| rng.gen_range(0.05..1.0))
                .collect()
        })
        .collect();
    let cfg = DistributedPtasConfig::default()
        .with_max_minirounds(None)
        .with_partitions(4)
        .with_threads(1);
    let mut ptas = DistributedPtas::new(net.h(), cfg);
    assert!(ptas.partition().is_some(), "must exercise the tiled path");
    let mut outcome = Default::default();
    for w in cycle.iter().chain(cycle.iter()) {
        ptas.decide_into(w, &mut outcome);
    }

    let allocs = min_allocs(3, || {
        for w in &cycle {
            ptas.decide_into(w, &mut outcome);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state tiled decide_into must not allocate (counted {allocs})"
    );
}

#[test]
fn policy_indices_into_is_allocation_free() {
    use mhca::bandit::ArmStats;
    use rand::{rngs::StdRng, SeedableRng};
    let mut stats = ArmStats::new(300);
    for arm in 0..300 {
        stats.update(arm, 0.5);
    }
    let mut policy = CsUcb::new(2.0);
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::new();
    policy.indices_into(1, &stats, &mut rng, &mut out);

    let allocs = min_allocs(3, || {
        for t in 2..50 {
            policy.indices_into(t, &stats, &mut rng, &mut out);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state indices_into must not allocate (counted {allocs})"
    );
}

#[test]
fn log_histogram_record_is_allocation_free() {
    // The telemetry histogram is a fixed inline bucket array; recording
    // must never touch the heap, or the traced round loop would allocate
    // per decision.
    let mut hist = mhca::telemetry::LogHistogram::new();
    hist.record(1); // nothing to warm, but keep the shape uniform
    let allocs = min_allocs(3, || {
        for v in 0..10_000u64 {
            hist.record(v * v);
        }
    });
    assert_eq!(
        allocs, 0,
        "LogHistogram::record must not allocate (counted {allocs})"
    );
    assert!(hist.count() > 0);
}

#[test]
fn disabled_telemetry_emission_is_allocation_free() {
    // The disabled handle is the default in every runner; its counter /
    // gauge / span path must cost nothing so untraced runs stay on the
    // PR-1 allocation-free contract.
    use mhca::telemetry::{FieldValue, Telemetry};
    let telemetry = Telemetry::disabled();
    let allocs = min_allocs(3, || {
        for i in 0..1_000u64 {
            telemetry.counter("loop.counter", i);
            telemetry.gauge("loop.gauge", i as f64);
            telemetry.event(
                mhca::telemetry::EventKind::SpanEnd,
                "loop.span",
                &[("dur_ns", FieldValue::U64(i))],
            );
            let span = telemetry.span("loop");
            span.end();
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled Telemetry must not allocate on emission (counted {allocs})"
    );
}

#[test]
fn traced_round_loop_allocation_grows_sublinearly_with_horizon() {
    // Same end-to-end guard as below, but with a telemetry-attached
    // observer set over a no-op sink: histogram recording and sampled
    // span emission ride the round loop, so the per-slot path must stay
    // allocation-free with tracing enabled too. (Span/hist emission at
    // the run boundaries may allocate; the loop must not.)
    use mhca::core::experiment::ObserverSet;
    use mhca::telemetry::{NoopSink, Telemetry};
    let net = Network::random(30, 3, 4.0, 0.1, 3);
    let count_run = |horizon: u64| {
        min_allocs(2, || {
            let telemetry = Telemetry::from_sink(Box::new(NoopSink));
            let mut observers = ObserverSet::new();
            observers.attach_telemetry(&telemetry);
            let cfg = mhca::core::runner::Algorithm2Config::default().with_horizon(horizon);
            let _ = mhca::core::runner::run_policy_observed(
                &net,
                &cfg,
                &mut CsUcb::new(2.0),
                &mut observers,
            );
        })
    };
    let short = count_run(40);
    let long = count_run(160);
    // 4× the slots must cost well under 2× the allocations.
    assert!(
        long < short * 2,
        "per-slot allocations leak under tracing: horizon 40 → {short} allocs, horizon 160 → {long}"
    );
}

#[test]
fn run_policy_allocation_grows_sublinearly_with_horizon() {
    // End-to-end guard: the whole-run allocation count must be dominated
    // by setup, not by the per-slot loop. With the loop allocation-free,
    // doubling the horizon adds (almost) nothing; before PR 1 each slot
    // cost a fresh engine + inboxes + index/observation vectors.
    let net = Network::random(30, 3, 4.0, 0.1, 3);
    let count_run = |horizon: u64| {
        min_allocs(2, || {
            let cfg = mhca::core::runner::Algorithm2Config::default().with_horizon(horizon);
            let _ = mhca::core::runner::run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        })
    };
    let short = count_run(40);
    let long = count_run(160);
    // 4× the slots must cost well under 2× the allocations.
    assert!(
        long < short * 2,
        "per-slot allocations leak: horizon 40 → {short} allocs, horizon 160 → {long}"
    );
}
