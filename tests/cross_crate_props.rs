//! Cross-crate property-based tests: invariants that span the graph,
//! MWIS, and core crates.

use mhca::core::{DistributedPtas, DistributedPtasConfig};
use mhca::graph::{ExtendedConflictGraph, Graph};
use mhca::mwis::{exact, greedy, robust_ptas};
use proptest::prelude::*;

/// Strategy for a random graph on up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
        edges.prop_map(move |es| {
            let mut g = Graph::builder(n);
            for (u, v) in es {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            g.build()
        })
    })
}

fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_beats_every_other_solver((g, w) in arb_graph(12).prop_flat_map(|g| {
        let n = g.n();
        (Just(g), arb_weights(n))
    })) {
        let opt = exact::solve(&g, &w);
        prop_assert!(g.is_independent(&opt.vertices));
        for s in [
            greedy::max_weight(&g, &w),
            greedy::weight_degree(&g, &w),
            robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon(0.5)),
        ] {
            prop_assert!(g.is_independent(&s.vertices));
            prop_assert!(s.weight <= opt.weight + 1e-9);
        }
    }

    #[test]
    fn ptas_respects_its_ratio((g, w) in arb_graph(10).prop_flat_map(|g| {
        let n = g.n();
        (Just(g), arb_weights(n))
    })) {
        let opt = exact::solve(&g, &w);
        for eps in [0.25f64, 1.0] {
            let s = robust_ptas::solve(&g, &w, &robust_ptas::Config::with_epsilon(eps));
            prop_assert!(s.weight * (1.0 + eps) >= opt.weight - 1e-9,
                "eps {} ptas {} opt {}", eps, s.weight, opt.weight);
        }
    }

    #[test]
    fn extended_graph_strategies_roundtrip((g, m) in (arb_graph(8), 1usize..4)) {
        let h = ExtendedConflictGraph::new(&g, m);
        // The empty strategy is always feasible.
        let empty = mhca::graph::Strategy::new(g.n());
        prop_assert!(h.is_feasible(&empty));
        // Any exact MWIS of H maps to a feasible strategy and back.
        let w: Vec<f64> = (0..h.n_vertices()).map(|v| (v % 7 + 1) as f64).collect();
        let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / m).collect();
        let allowed: Vec<usize> = (0..h.n_vertices()).collect();
        let opt = exact::solve_grouped(h.graph(), &w, &allowed, &groups);
        let s = h.strategy_from_is(&opt.vertices);
        prop_assert!(h.is_feasible(&s));
        let back = h.is_from_strategy(&s);
        prop_assert_eq!(back, opt.vertices);
    }

    #[test]
    fn distributed_decision_always_independent((g, m, seed) in (arb_graph(12), 1usize..4, 0u64..1000)) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let h = ExtendedConflictGraph::new(&g, m);
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..h.n_vertices()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default().with_r(1).with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        prop_assert!(out.all_marked);
        prop_assert_eq!(out.conflicts, 0);
        prop_assert!(h.graph().is_independent(&out.winners));
        // At most one channel per master node.
        let mut masters: Vec<usize> = out.winners.iter().map(|&v| v / m).collect();
        let len = masters.len();
        masters.dedup();
        prop_assert_eq!(len, masters.len());
    }

    #[test]
    fn distributed_weight_dominates_half_of_greedy((g, seed) in (arb_graph(10), 0u64..100)) {
        // Sanity floor: the distributed protocol with exact local solving
        // should never fall below half of the global greedy solution.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let h = ExtendedConflictGraph::new(&g, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..h.n_vertices()).map(|_| rng.gen_range(0.1..1.0)).collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default().with_r(2).with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        let dist: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let gr = greedy::max_weight(h.graph(), &w);
        prop_assert!(dist >= 0.5 * gr.weight - 1e-9,
            "distributed {} vs greedy {}", dist, gr.weight);
    }
}
