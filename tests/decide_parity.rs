//! Differential oracle for the decide phase.
//!
//! The incremental dirty-ball leader election
//! (`DistributedPtas::decide_into`) must produce **bit-identical**
//! [`DecisionOutcome`]s — winners, per-mini-round weight series, leader
//! lists, mini-round counts, conflict audit, and communication counters —
//! to the full-rescan reference implementation
//! (`DistributedPtas::decide_into_rescan`), across every topology family,
//! radius, loss setting, and seed in the grid below (≥ 200 combinations).
//!
//! Each combination runs a *sequence* of decisions on one persistent
//! engine pair, so cache reuse across decisions (stale blockers, dirty
//! stamps, epoch wraparound seams) is exercised, not just the first call.
//! Under message loss `decide_into` falls back to the reference path by
//! design; those combinations pin the fallback to consume the loss RNG
//! stream exactly as before, so lossy campaigns reproduce bit-for-bit.
//!
//! The topology zoo and the parity-sequence assertion live in
//! `mhca_specgen::support`, shared with `tests/partition_parity.rs` and
//! the generated `decide_parity` contract
//! (`tests/specgen_contracts.rs`), which extends this pinned grid with
//! generated spec-space coverage.

use mhca::core::{DecisionOutcome, DistributedPtas, DistributedPtasConfig, LocalSolver};
use mhca::graph::{topology, ExtendedConflictGraph};
use mhca_specgen::support::{assert_parity_sequence, topology_zoo};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn decide_parity_grid_lossless_and_lossy() {
    let mut combinations = 0usize;
    let mut compared = 0usize;
    let (mut inc_scans, mut ref_scans) = (0u64, 0u64);
    for (name, build) in topology_zoo() {
        for instance in 0..5u64 {
            let g = build(900 + instance);
            for &m in &[1usize, 3] {
                let h = ExtendedConflictGraph::new(&g, m);
                for &r in &[1usize, 2] {
                    for &(loss, loss_seed) in &[(0.0, 0), (0.15, 7 + instance)] {
                        let cfg = DistributedPtasConfig::default()
                            .with_r(r)
                            .with_max_minirounds(None)
                            .with_loss(loss, loss_seed);
                        let label = format!("{name} m={m} r={r} loss={loss} instance={instance}");
                        let (n_decisions, inc, re) =
                            assert_parity_sequence(&h, cfg, 1000 * instance + r as u64, 2, &label);
                        compared += n_decisions;
                        if loss == 0.0 {
                            inc_scans += inc;
                            ref_scans += re;
                        }
                        combinations += 1;
                    }
                }
            }
        }
    }
    assert!(
        combinations >= 200,
        "grid shrank below the 200-combination floor: {combinations}"
    );
    assert!(compared >= 2 * combinations);
    assert!(
        inc_scans < ref_scans,
        "incremental path saved no scans across the lossless grid \
         ({inc_scans} vs {ref_scans})"
    );
}

#[test]
fn decide_parity_capped_minirounds_and_solvers() {
    // Mini-round budgets interact with the dirty set (a capped run leaves
    // candidates undetermined); solver variants change the determination
    // lists the dirty expansion consumes.
    let mut rng = StdRng::seed_from_u64(77);
    for instance in 0..6u64 {
        let (g, _) = mhca::graph::unit_disk::random_with_average_degree(30, 4.5, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        for &cap in &[Some(1), Some(2), Some(4), None] {
            for solver in [
                LocalSolver::Exact,
                LocalSolver::Greedy,
                LocalSolver::Auto {
                    max_exact_groups: 6,
                },
            ] {
                let cfg = DistributedPtasConfig::default()
                    .with_r(2)
                    .with_max_minirounds(cap)
                    .with_local_solver(solver);
                let label = format!("caps instance={instance} cap={cap:?} solver={solver:?}");
                assert_parity_sequence(&h, cfg, 50 + instance, 2, &label);
            }
        }
    }
}

#[test]
fn decide_parity_worstcase_line_runs_to_completion() {
    // The Θ(N)-mini-round worst case (Fig. 5): decreasing weights along a
    // line maximize mini-round count and dirty-set churn.
    let n = 48;
    let g = topology::line(n);
    let h = ExtendedConflictGraph::new(&g, 1);
    let w: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / (n + 1) as f64).collect();
    let cfg = DistributedPtasConfig::default()
        .with_r(1)
        .with_max_minirounds(None);
    let mut incremental = DistributedPtas::new(&h, cfg);
    let mut reference = DistributedPtas::new(&h, cfg);
    let mut got = DecisionOutcome::default();
    let mut expect = DecisionOutcome::default();
    incremental.decide_into(&w, &mut got);
    reference.decide_into_rescan(&w, &mut expect);
    assert_eq!(got, expect);
    assert!(got.minirounds_used >= n / 4);
    // Many mini-rounds is exactly where the dirty set pays: the reference
    // rescans surviving candidates every round.
    assert!(
        incremental.scan_stats().candidates_scanned * 2 < reference.scan_stats().candidates_scanned,
        "incremental {} vs reference {}",
        incremental.scan_stats().candidates_scanned,
        reference.scan_stats().candidates_scanned
    );
}

#[test]
fn decide_parity_equal_weight_tie_storm() {
    // All-equal weights force every verdict through the id tiebreak.
    for &(rows, cols) in &[(4usize, 6usize), (3, 9)] {
        let g = topology::grid(rows, cols);
        let h = ExtendedConflictGraph::new(&g, 2);
        let w = vec![0.5; h.n_vertices()];
        for r in [1, 2] {
            let cfg = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(None);
            let mut incremental = DistributedPtas::new(&h, cfg);
            let mut reference = DistributedPtas::new(&h, cfg);
            let mut got = DecisionOutcome::default();
            let mut expect = DecisionOutcome::default();
            incremental.decide_into(&w, &mut got);
            reference.decide_into_rescan(&w, &mut expect);
            assert_eq!(got, expect, "ties {rows}x{cols} r={r}");
        }
    }
}
