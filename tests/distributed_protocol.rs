//! Integration tests of the distributed strategy decision (Algorithm 3)
//! against the centralized solvers it approximates.

use mhca::bandit::bounds;
use mhca::core::{DistributedPtas, DistributedPtasConfig, LocalSolver, Network};
use mhca::graph::ExtendedConflictGraph;
use mhca::mwis::{exact, robust_ptas};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn weights_for(h: &ExtendedConflictGraph, rng: &mut StdRng) -> Vec<f64> {
    (0..h.n_vertices())
        .map(|_| rng.gen_range(0.1..1.0))
        .collect()
}

#[test]
fn distributed_output_is_independent_across_many_seeds() {
    for seed in 0..20 {
        let net = Network::random(25, 3, 4.0, 0.1, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        assert!(out.all_marked, "seed {seed} did not terminate");
        assert_eq!(out.conflicts, 0, "seed {seed} produced conflicts");
        assert!(
            net.h().graph().is_independent(&out.winners),
            "seed {seed} winners not independent"
        );
    }
}

#[test]
fn distributed_tracks_centralized_robust_ptas_quality() {
    // Run to completion with exact local solving; compare against the
    // centralized robust PTAS and the exact optimum on small instances.
    let mut total_dist = 0.0;
    let mut total_central = 0.0;
    let mut total_opt = 0.0;
    for seed in 0..8 {
        let net = Network::random(14, 2, 3.0, 0.1, 100 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let allowed: Vec<usize> = (0..net.n_vertices()).collect();
        let opt = exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups());
        let central = robust_ptas::solve_grouped(
            net.h().graph(),
            &w,
            &robust_ptas::Config::with_epsilon(0.5),
            net.node_groups(),
        );
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None)
                .with_local_solver(LocalSolver::Exact),
        );
        let out = ptas.decide(&w);
        let dist: f64 = out.winners.iter().map(|&v| w[v]).sum();
        total_dist += dist;
        total_central += central.weight;
        total_opt += opt.weight;
    }
    // Aggregate quality: distributed should be within 25% of the
    // centralized PTAS and within ρ of optimal on average.
    assert!(
        total_dist >= 0.75 * total_central,
        "distributed {total_dist} vs centralized {total_central}"
    );
    assert!(
        total_dist >= 0.6 * total_opt,
        "distributed {total_dist} vs optimum {total_opt}"
    );
}

#[test]
fn theorem2_bound_holds_empirically() {
    // The distributed decision's approximation ratio should be far better
    // than the worst-case ρ with ρ^r = M(2r+1)² (Theorem 2).
    let r = 2;
    for seed in 0..5 {
        let net = Network::random(12, 3, 3.0, 0.1, 200 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let allowed: Vec<usize> = (0..net.n_vertices()).collect();
        let opt = exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups());
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        let dist: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let rho = bounds::theorem2_rho(net.n_channels(), r);
        assert!(
            dist * rho >= opt.weight,
            "seed {seed}: ratio worse than Theorem 2 bound"
        );
    }
}

#[test]
fn capping_minirounds_loses_little_weight_on_random_networks() {
    // Theorem 4 / Fig. 6: a constant D captures almost all the weight.
    let net = Network::random(80, 5, 3.5, 0.1, 301);
    let w = net.channels().means();
    let full = {
        let mut p = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None),
        );
        let out = p.decide(&w);
        out.winners.iter().map(|&v| w[v]).sum::<f64>()
    };
    let capped = {
        let mut p = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(4)),
        );
        let out = p.decide(&w);
        out.winners.iter().map(|&v| w[v]).sum::<f64>()
    };
    assert!(
        capped >= 0.9 * full,
        "D=4 kept only {capped} of {full} weight"
    );
}

#[test]
fn message_loss_degrades_gracefully() {
    // With 10% relay loss the protocol still terminates within its budget
    // and produces mostly-independent output; the conflict counter makes
    // any safety damage visible.
    let net = Network::random(30, 3, 4.0, 0.1, 400);
    let mut rng = StdRng::seed_from_u64(400);
    let w = weights_for(net.h(), &mut rng);
    for loss_seed in 0..5 {
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(1)
                .with_max_minirounds(Some(30))
                .with_loss(0.1, loss_seed),
        );
        let out = ptas.decide(&w);
        assert!(!out.winners.is_empty(), "lossy run produced no winners");
        // The loss-defense rule keeps conflicts rare.
        assert!(
            out.conflicts <= 2,
            "loss seed {loss_seed}: too many conflicts ({})",
            out.conflicts
        );
    }
}

#[test]
fn lossless_runs_never_conflict_even_with_greedy_solver() {
    for seed in 0..10 {
        let net = Network::random(40, 4, 5.0, 0.1, 500 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(4))
                .with_local_solver(LocalSolver::Greedy),
        );
        let out = ptas.decide(&w);
        assert_eq!(out.conflicts, 0);
        assert!(net.h().graph().is_independent(&out.winners));
    }
}
