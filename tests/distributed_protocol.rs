//! Integration tests of the distributed strategy decision (Algorithm 3)
//! against the centralized solvers it approximates, plus a property-based
//! battery over the PTAS protocol invariants (previously only
//! spot-checked on fixed graphs).

use mhca::bandit::bounds;
use mhca::core::{DecisionOutcome, DistributedPtas, DistributedPtasConfig, LocalSolver, Network};
use mhca::graph::ExtendedConflictGraph;
use mhca::mwis::{exact, robust_ptas};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn weights_for(h: &ExtendedConflictGraph, rng: &mut StdRng) -> Vec<f64> {
    (0..h.n_vertices())
        .map(|_| rng.gen_range(0.1..1.0))
        .collect()
}

#[test]
fn distributed_output_is_independent_across_many_seeds() {
    for seed in 0..20 {
        let net = Network::random(25, 3, 4.0, 0.1, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        assert!(out.all_marked, "seed {seed} did not terminate");
        assert_eq!(out.conflicts, 0, "seed {seed} produced conflicts");
        assert!(
            net.h().graph().is_independent(&out.winners),
            "seed {seed} winners not independent"
        );
    }
}

#[test]
fn distributed_tracks_centralized_robust_ptas_quality() {
    // Run to completion with exact local solving; compare against the
    // centralized robust PTAS and the exact optimum on small instances.
    let mut total_dist = 0.0;
    let mut total_central = 0.0;
    let mut total_opt = 0.0;
    for seed in 0..8 {
        let net = Network::random(14, 2, 3.0, 0.1, 100 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let allowed: Vec<usize> = (0..net.n_vertices()).collect();
        let opt = exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups());
        let central = robust_ptas::solve_grouped(
            net.h().graph(),
            &w,
            &robust_ptas::Config::with_epsilon(0.5),
            net.node_groups(),
        );
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None)
                .with_local_solver(LocalSolver::Exact),
        );
        let out = ptas.decide(&w);
        let dist: f64 = out.winners.iter().map(|&v| w[v]).sum();
        total_dist += dist;
        total_central += central.weight;
        total_opt += opt.weight;
    }
    // Aggregate quality: distributed should be within 25% of the
    // centralized PTAS and within ρ of optimal on average.
    assert!(
        total_dist >= 0.75 * total_central,
        "distributed {total_dist} vs centralized {total_central}"
    );
    assert!(
        total_dist >= 0.6 * total_opt,
        "distributed {total_dist} vs optimum {total_opt}"
    );
}

#[test]
fn theorem2_bound_holds_empirically() {
    // The distributed decision's approximation ratio should be far better
    // than the worst-case ρ with ρ^r = M(2r+1)² (Theorem 2).
    let r = 2;
    for seed in 0..5 {
        let net = Network::random(12, 3, 3.0, 0.1, 200 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let allowed: Vec<usize> = (0..net.n_vertices()).collect();
        let opt = exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups());
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(None),
        );
        let out = ptas.decide(&w);
        let dist: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let rho = bounds::theorem2_rho(net.n_channels(), r);
        assert!(
            dist * rho >= opt.weight,
            "seed {seed}: ratio worse than Theorem 2 bound"
        );
    }
}

#[test]
fn capping_minirounds_loses_little_weight_on_random_networks() {
    // Theorem 4 / Fig. 6: a constant D captures almost all the weight.
    let net = Network::random(80, 5, 3.5, 0.1, 301);
    let w = net.channels().means();
    let full = {
        let mut p = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(None),
        );
        let out = p.decide(&w);
        out.winners.iter().map(|&v| w[v]).sum::<f64>()
    };
    let capped = {
        let mut p = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(4)),
        );
        let out = p.decide(&w);
        out.winners.iter().map(|&v| w[v]).sum::<f64>()
    };
    assert!(
        capped >= 0.9 * full,
        "D=4 kept only {capped} of {full} weight"
    );
}

#[test]
fn message_loss_degrades_gracefully() {
    // With 10% relay loss the protocol still terminates within its budget
    // and produces mostly-independent output; the conflict counter makes
    // any safety damage visible.
    let net = Network::random(30, 3, 4.0, 0.1, 400);
    let mut rng = StdRng::seed_from_u64(400);
    let w = weights_for(net.h(), &mut rng);
    for loss_seed in 0..5 {
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(1)
                .with_max_minirounds(Some(30))
                .with_loss(0.1, loss_seed),
        );
        let out = ptas.decide(&w);
        assert!(!out.winners.is_empty(), "lossy run produced no winners");
        // The loss-defense rule keeps conflicts rare.
        assert!(
            out.conflicts <= 2,
            "loss seed {loss_seed}: too many conflicts ({})",
            out.conflicts
        );
    }
}

/// Shared generator for the property battery: a random network and a
/// full-run decision outcome (plus the weights it was decided under).
fn decided_instance(
    n: usize,
    m: usize,
    r: usize,
    seed: u64,
    cap: Option<usize>,
) -> (Network, Vec<f64>, DecisionOutcome) {
    let net = Network::random(n, m, 4.0, 0.1, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let w = weights_for(net.h(), &mut rng);
    let mut ptas = DistributedPtas::new(
        net.h(),
        DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(cap),
    );
    let out = ptas.decide(&w);
    (net, w, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Winners always form an independent set in the extended conflict
    /// graph, with at most one channel per master node.
    #[test]
    fn prop_winners_independent_in_extended_graph(
        (n, m, r, seed) in (6usize..32, 1usize..5, 1usize..3, 0u64..1_000_000)
    ) {
        let (net, _, out) = decided_instance(n, m, r, seed, None);
        prop_assert!(out.all_marked, "full run must terminate");
        prop_assert_eq!(out.conflicts, 0);
        prop_assert!(net.h().graph().is_independent(&out.winners));
        let mut masters: Vec<usize> = out.winners.iter().map(|&v| v / m).collect();
        let before = masters.len();
        masters.dedup();
        prop_assert_eq!(before, masters.len(), "a node won two channels");
    }

    /// Same-mini-round leaders are pairwise ≥ 2r+2 hops apart in H — the
    /// guarantee the strict total order on (weight, id) buys, and the
    /// reason same-round determination lists never overlap.
    #[test]
    fn prop_leaders_are_2r_plus_2_apart(
        (n, m, r, seed) in (6usize..28, 1usize..4, 1usize..3, 0u64..1_000_000)
    ) {
        let (net, _, out) = decided_instance(n, m, r, seed, None);
        let g = net.h().graph();
        for tau in 0..out.minirounds_used {
            let leaders = out.leaders_of_miniround(tau);
            for (i, &a) in leaders.iter().enumerate() {
                for &b in &leaders[i + 1..] {
                    match g.hop_distance(a, b) {
                        // Disconnected leaders are infinitely far apart.
                        None => {}
                        Some(d) => prop_assert!(
                            d >= 2 * r + 2,
                            "mini-round {} leaders {} and {} only {} hops apart (r = {})",
                            tau, a, b, d, r
                        ),
                    }
                }
            }
        }
    }

    /// The cumulative winner weight is monotone across mini-rounds (a
    /// winner is never unmade), and the final series entry equals the
    /// winners' total weight. Holds under mini-round caps too.
    #[test]
    fn prop_cumulative_weight_monotone(
        (n, m, seed, capped) in (6usize..32, 1usize..4, 0u64..1_000_000, 0usize..3)
    ) {
        let cap = [None, Some(2), Some(4)][capped];
        let (_, w, out) = decided_instance(n, m, 2, seed, cap);
        for pair in out.per_miniround_weight.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 1e-12, "series decreased: {:?}", pair);
        }
        let final_weight: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let last = out.per_miniround_weight.last().copied().unwrap_or(0.0);
        prop_assert!(
            (final_weight - last).abs() < 1e-9,
            "series end {} vs winners {}", last, final_weight
        );
    }

    /// Property-level differential: the incremental decide path agrees
    /// with the full-rescan oracle on arbitrary random instances.
    #[test]
    fn prop_incremental_matches_rescan_oracle(
        (n, m, r, seed) in (6usize..30, 1usize..4, 1usize..3, 0u64..1_000_000)
    ) {
        let net = Network::random(n, m, 4.0, 0.1, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_7c_c1);
        let w = weights_for(net.h(), &mut rng);
        let cfg = DistributedPtasConfig::default().with_r(r).with_max_minirounds(None);
        let mut incremental = DistributedPtas::new(net.h(), cfg);
        let mut reference = DistributedPtas::new(net.h(), cfg);
        let mut got = DecisionOutcome::default();
        let mut expect = DecisionOutcome::default();
        incremental.decide_into(&w, &mut got);
        reference.decide_into_rescan(&w, &mut expect);
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn lossless_runs_never_conflict_even_with_greedy_solver() {
    for seed in 0..10 {
        let net = Network::random(40, 4, 5.0, 0.1, 500 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = weights_for(net.h(), &mut rng);
        let mut ptas = DistributedPtas::new(
            net.h(),
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(4))
                .with_local_solver(LocalSolver::Greedy),
        );
        let out = ptas.decide(&w);
        assert_eq!(out.conflicts, 0);
        assert!(net.h().graph().is_independent(&out.winners));
    }
}
