//! End-to-end integration tests: the full Algorithm 2 pipeline
//! (network → learning policy → distributed decision → transmission →
//! estimate update) across crates.

use mhca::bandit::policies::{CsUcb, EpsilonGreedy, Llr, Oracle, Random};
use mhca::core::{
    runner::{run_policy, Algorithm2Config},
    DistributedPtasConfig, Network,
};

fn small_net(seed: u64) -> Network {
    Network::random_connected(10, 3, 3.0, 0.1, seed)
}

#[test]
fn cs_ucb_approaches_the_exact_optimum() {
    let net = small_net(1);
    let opt = net.optimal().weight;
    let cfg = Algorithm2Config::default().with_horizon(1500);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    // After 1500 slots the expected throughput of the played strategies
    // should be within 30% of the exact optimum (the policy still
    // explores; zero-regret is asymptotic).
    assert!(
        run.average_expected_kbps > 0.7 * opt,
        "expected {} vs optimum {opt}",
        run.average_expected_kbps
    );
}

#[test]
fn oracle_with_decision_overhead_halves_throughput() {
    // With Table II timing, effective throughput is θ = 1/2 of observed
    // when deciding every slot — Section V's "actual throughput gained at
    // each round is 0.5 Rx(t)".
    let net = small_net(2);
    let cfg = Algorithm2Config::default().with_horizon(200);
    let mut oracle = Oracle::new(net.channels().means());
    let run = run_policy(&net, &cfg, &mut oracle);
    let ratio = run.average_effective_kbps / run.average_observed_kbps;
    assert!(
        (ratio - 0.5).abs() < 1e-9,
        "effective/observed ratio {ratio} should equal theta = 0.5"
    );
}

#[test]
fn policies_rank_as_expected_on_average() {
    // Oracle ≥ CS-UCB > Random in expected throughput over a long run.
    let net = small_net(3);
    let cfg = Algorithm2Config::default().with_horizon(800);
    let mut oracle = Oracle::new(net.channels().means());
    let o = run_policy(&net, &cfg, &mut oracle);
    let c = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let r = run_policy(&net, &cfg, &mut Random);
    assert!(
        o.average_expected_kbps >= c.average_expected_kbps - 1e-9,
        "oracle {} vs cs-ucb {}",
        o.average_expected_kbps,
        c.average_expected_kbps
    );
    assert!(
        c.average_expected_kbps > r.average_expected_kbps,
        "cs-ucb {} vs random {}",
        c.average_expected_kbps,
        r.average_expected_kbps
    );
}

#[test]
fn paired_comparison_is_fair_and_deterministic() {
    // Two runs of the same policy on the same network are identical;
    // different policies see identical channel realizations (counter-based
    // sampling), so the comparison is paired.
    let net = small_net(4);
    let cfg = Algorithm2Config::default().with_horizon(100).with_seed(9);
    let a = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let b = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    assert_eq!(a, b);
}

#[test]
fn epsilon_greedy_learns_something() {
    let net = small_net(5);
    let cfg = Algorithm2Config::default().with_horizon(600);
    let e = run_policy(&net, &cfg, &mut EpsilonGreedy::new(0.1, 2.0));
    let r = run_policy(&net, &cfg, &mut Random);
    assert!(e.average_expected_kbps > r.average_expected_kbps);
}

#[test]
fn regret_decreases_over_the_run() {
    let net = small_net(6);
    let opt = net.optimal().weight;
    let cfg = Algorithm2Config::default()
        .with_horizon(1000)
        .with_optimal_kbps(opt);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let pr = &run.practical_regret;
    let early = pr[49];
    let late = *pr.last().unwrap();
    assert!(
        late < early,
        "practical regret should fall: early {early}, late {late}"
    );
    // And the floor: even a perfect policy pays (1-θ)·R1.
    let theta = 0.5;
    assert!(
        late > opt * (1.0 - theta) - 0.2 * opt,
        "regret {late} below plausible floor"
    );
}

#[test]
fn llr_and_cs_ucb_both_beat_the_beta_target() {
    let net = small_net(7);
    let opt = net.optimal().weight;
    let cfg = Algorithm2Config::default()
        .with_horizon(600)
        .with_optimal_kbps(opt);
    let c = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let l = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
    assert!(*c.practical_beta_regret.last().unwrap() < 0.0);
    assert!(*l.practical_beta_regret.last().unwrap() < 0.0);
}

#[test]
fn deciding_with_larger_r_does_not_break_anything() {
    let net = small_net(8);
    for r in [1usize, 2, 3] {
        let cfg = Algorithm2Config::default().with_horizon(50).with_decision(
            DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(Some(4)),
        );
        let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert!(run.average_observed_kbps > 0.0, "r={r} produced nothing");
    }
}

#[test]
fn final_strategy_is_feasible() {
    let net = small_net(9);
    let cfg = Algorithm2Config::default().with_horizon(200);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    // Conversion panics if the winner set is not independent in H.
    let strategy = net.strategy_from_is(&run.final_strategy_vertices);
    assert!(net.h().is_feasible(&strategy));
    assert!(strategy.assigned_count() > 0);
}
