//! Adversarial vertex orderings fed to [`Partition`].
//!
//! `Partition::stripes` cuts the *index* range into contiguous cores, so
//! its behaviour under relabeling splits in two:
//!
//! - **Correctness is ordering-independent.** Cores cover the range
//!   disjointly, every core vertex's `radius`-ball stays inside
//!   core ∪ halo, and the tiled decide stays bit-identical to the serial
//!   engine — for *any* permutation of the vertex ids. The generated
//!   relabelings below pin all three.
//! - **Halo width is not.** The documented honesty caveat (see the
//!   `partition` module docs): index-local orderings get thin halos,
//!   adversarial orderings inflate `halo_entries` toward Θ(n · tiles)
//!   while the shared-memory sweeps stay balanced. The last two tests
//!   make the caveat quantitative — a pinned thin bound for the
//!   identity-labeled line, and a demonstration that a single generated
//!   shuffle blows through that bound.

use mhca::core::DistributedPtasConfig;
use mhca::graph::{topology, ExtendedConflictGraph, Graph, Partition};
use mhca_specgen::support::assert_tiled_parity_sequence;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        p.swap(i, rng.gen_range(0..=i));
    }
    p
}

/// The graph with every vertex `v` renamed to `relabel[v]`.
fn apply_relabeling(g: &Graph, relabel: &[usize]) -> Graph {
    let mut b = Graph::builder(g.n());
    for u in 0..g.n() {
        for &w in g.neighbors(u) {
            if u < w {
                b.add_edge(relabel[u], relabel[w]);
            }
        }
    }
    b.build()
}

/// The base topologies the relabelings act on: the index-local families
/// whose halos are thin under identity labels.
fn base_graph(which: usize, seed: u64) -> Graph {
    match which % 3 {
        0 => topology::line(24 + (seed % 10) as usize),
        1 => topology::grid(4, 5 + (seed % 3) as usize),
        _ => {
            let mut rng = StdRng::seed_from_u64(seed);
            mhca::graph::unit_disk::random_with_average_degree(24, 3.5, &mut rng).0
        }
    }
}

/// The hop-distance oracle for one tile: the halo must be exactly the
/// out-of-core vertices within `radius` hops of the core.
fn check_halos_exact(g: &Graph, p: &Partition) {
    for t in 0..p.tile_count() {
        let core = p.core(t);
        let mut expect: Vec<u32> = Vec::new();
        for v in 0..g.n() {
            if core.contains(&v) {
                continue;
            }
            let near = core
                .clone()
                .any(|c| g.hop_distance(c, v).is_some_and(|d| d <= p.radius()));
            if near {
                expect.push(v as u32);
            }
        }
        assert_eq!(p.halo(t), expect.as_slice(), "tile {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants hold for any generated relabeling: cores
    /// disjointly cover the range, halos match the hop-distance oracle,
    /// and every core ball stays inside core ∪ halo.
    #[test]
    fn partition_invariants_survive_generated_relabelings(
        ((which, graph_seed), (shuffle_seed, tiles), radius) in
            ((0usize..3, 0u64..10_000), (0u64..10_000, 2usize..8), 1usize..4),
    ) {
        let g = apply_relabeling(
            &base_graph(which, graph_seed),
            &permutation(base_graph(which, graph_seed).n(), shuffle_seed),
        );
        let p = Partition::stripes(&g, tiles, radius);

        // Disjoint contiguous cover.
        let mut covered = 0usize;
        for t in 0..p.tile_count() {
            let core = p.core(t);
            prop_assert!(!core.is_empty());
            prop_assert_eq!(core.start, covered);
            covered = core.end;
        }
        prop_assert_eq!(covered, g.n());

        check_halos_exact(&g, &p);

        // Ball coverage — the property the tiled decide relies on.
        for t in 0..p.tile_count() {
            let core = p.core(t);
            let halo = p.halo(t);
            for v in core.clone() {
                for u in g.r_hop_neighborhood(v, radius) {
                    prop_assert!(
                        core.contains(&u) || halo.binary_search(&(u as u32)).is_ok(),
                        "tile {}: ball({}) member {} escapes core ∪ halo", t, v, u
                    );
                }
            }
        }
    }

    /// Decide-phase parity is ordering-independent: the tiled engine on a
    /// relabeled graph still matches the serial and rescan engines
    /// bit-for-bit, however wide the relabeling made the halos.
    #[test]
    fn tiled_decide_parity_survives_generated_relabelings(
        ((which, graph_seed), (shuffle_seed, partitions), r) in
            ((0usize..3, 0u64..10_000), (0u64..10_000, 2usize..7), 1usize..3),
    ) {
        let base = base_graph(which, graph_seed);
        let g = apply_relabeling(&base, &permutation(base.n(), shuffle_seed));
        let h = ExtendedConflictGraph::new(&g, 2);
        let cfg = DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(None);
        assert_tiled_parity_sequence(
            &h, cfg, partitions, 0, shuffle_seed, 2, "relabeled instance",
        );
    }
}

#[test]
fn identity_labeled_line_halos_stay_within_the_thin_bound() {
    // The bound the stripe tiling is designed around: on an identity-
    // labeled line every tile boundary contributes at most `radius`
    // vertices to each side, so halo_entries ≤ 2 · radius · (tiles − 1).
    for n in [40usize, 60, 90] {
        let g = topology::line(n);
        for tiles in [2usize, 4, 6] {
            for radius in [1usize, 2, 3] {
                let p = Partition::stripes(&g, tiles, radius);
                let bound = 2 * radius * (tiles - 1);
                assert!(
                    p.halo_entries() <= bound,
                    "line n={n} tiles={tiles} radius={radius}: \
                     halo_entries {} > thin bound {bound}",
                    p.halo_entries()
                );
            }
        }
    }
}

#[test]
fn a_generated_relabeling_inflates_line_halos_past_the_thin_bound() {
    // The degradation half of the caveat, pinned: one seeded shuffle of a
    // 60-vertex line pushes halo_entries to several times the identity
    // bound. If stripe construction ever starts re-sorting indices for
    // locality, this assertion flips and the caveat can be retired.
    let n = 60;
    let (tiles, radius) = (4usize, 2usize);
    let identity_bound = 2 * radius * (tiles - 1);
    let g = apply_relabeling(&topology::line(n), &permutation(n, 9));
    let p = Partition::stripes(&g, tiles, radius);
    assert!(
        p.halo_entries() > 2 * identity_bound,
        "expected an adversarial shuffle to inflate halos well past the \
         identity bound {identity_bound}, got {}",
        p.halo_entries()
    );
    // Degradation is confined to halo width: the cores stay balanced.
    for t in 0..p.tile_count() {
        let core = p.core(t);
        assert!(core.len() >= n / (2 * tiles), "tile {t} core starved");
    }
}

/// The aspirational bound the caveat leaves open: a locality-restoring
/// index order (e.g. BFS renumbering before striping) would keep relabeled
/// lines within a constant factor of the identity bound. `Partition`
/// deliberately does not re-sort today — stripes must match the caller's
/// state-array layout — so this documents the target rather than gating
/// CI. Run with `cargo test -- --ignored` to measure how far off it is.
#[test]
#[ignore = "documents the halo bound a locality-restoring renumbering would achieve; \
            stripe tiling intentionally preserves caller index order (see partition \
            module docs)"]
fn relabeled_line_halos_would_be_thin_under_locality_restoring_renumbering() {
    let n = 60;
    let (tiles, radius) = (4usize, 2usize);
    let g = apply_relabeling(&topology::line(n), &permutation(n, 9));
    let p = Partition::stripes(&g, tiles, radius);
    let bound = 4 * radius * (tiles - 1);
    assert!(
        p.halo_entries() <= bound,
        "halo_entries {} exceeds the locality-restored target {bound}",
        p.halo_entries()
    );
}
