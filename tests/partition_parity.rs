//! Differential oracle for the partition-parallel decide phase.
//!
//! Tiling is an execution strategy, not a semantic knob: for every tile
//! count and threading mode, `DistributedPtas::decide_into` must produce
//! **bit-identical** [`DecisionOutcome`]s — winners, per-mini-round weight
//! series, flat leader lists, conflict audit, fallback-flood counter, and
//! communication counters — to the serial incremental path, and both must
//! match the full-rescan reference (`decide_into_rescan`), the ultimate
//! oracle. The scan-stats instrumentation must agree too: the tiled probe
//! visits exactly the vertices the serial probe visits, just from
//! different threads.
//!
//! Sequences run on persistent engines so cross-decision cache reuse
//! (stale blockers, epoch wraparound, pending-list reuse) is exercised
//! under tiling, not just the first call.
//!
//! The topology zoo and the tiled-parity assertion live in
//! `mhca_specgen::support`, shared with `tests/decide_parity.rs` and the
//! generated `partition_parity` contract (`tests/specgen_contracts.rs`).
//! Adversarial vertex *relabelings* of these same families are pinned
//! separately in `tests/partition_orderings.rs`.

use mhca::core::{DecisionOutcome, DistributedPtas, DistributedPtasConfig};
use mhca::graph::{topology, ExtendedConflictGraph, Graph};
use mhca_specgen::support::{assert_tiled_parity_sequence, topology_zoo};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn partition_parity_grid() {
    // Tile counts straddle the interesting seams: 2 (one boundary),
    // 3 (uneven stripes), 8 (more tiles than some instances have
    // boundary-free vertices — tiny cores, giant halos).
    let mut combinations = 0usize;
    for (name, build) in topology_zoo() {
        for instance in 0..3u64 {
            let g = build(400 + instance);
            for &m in &[1usize, 3] {
                let h = ExtendedConflictGraph::new(&g, m);
                for &r in &[1usize, 2] {
                    let base = DistributedPtasConfig::default()
                        .with_r(r)
                        .with_max_minirounds(None);
                    for &partitions in &[2usize, 3, 8] {
                        for &threads in &[0usize, 1] {
                            let label = format!("{name} m={m} r={r} instance={instance}");
                            assert_tiled_parity_sequence(
                                &h,
                                base,
                                partitions,
                                threads,
                                2000 * instance + r as u64,
                                2,
                                &label,
                            );
                            combinations += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(
        combinations >= 300,
        "grid shrank below the 300-combination floor: {combinations}"
    );
}

#[test]
fn partition_parity_capped_minirounds() {
    // A capped run leaves Candidates undetermined, so the next decision's
    // seeding sweep (snapshot device) starts from a partially-determined
    // cache — the seam where a tile reading a neighbor's fresh write
    // instead of the snapshot would diverge.
    let mut rng = StdRng::seed_from_u64(31);
    for instance in 0..4u64 {
        let (g, _) = mhca::graph::unit_disk::random_with_average_degree(30, 4.5, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        for &cap in &[Some(1), Some(2), Some(4)] {
            let base = DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(cap);
            for &partitions in &[2usize, 5] {
                let label = format!("caps instance={instance} cap={cap:?}");
                assert_tiled_parity_sequence(&h, base, partitions, 0, 90 + instance, 3, &label);
            }
        }
    }
}

#[test]
fn partition_parity_equal_weight_tie_storm() {
    // All-equal weights force every verdict through the id tiebreak — the
    // regime where any reordering of elections across tiles would change
    // the leader sets.
    for &(rows, cols) in &[(4usize, 6usize), (3, 9)] {
        let g = topology::grid(rows, cols);
        let h = ExtendedConflictGraph::new(&g, 2);
        let w = vec![0.5; h.n_vertices()];
        for r in [1usize, 2] {
            let base = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(None);
            let mut serial = DistributedPtas::new(&h, base);
            let mut expect = DecisionOutcome::default();
            serial.decide_into(&w, &mut expect);
            for partitions in [2usize, 4, 7] {
                let mut tiled =
                    DistributedPtas::new(&h, base.with_partitions(partitions).with_threads(0));
                let mut got = DecisionOutcome::default();
                tiled.decide_into(&w, &mut got);
                assert_eq!(got, expect, "ties {rows}x{cols} r={r} p={partitions}");
            }
        }
    }
}

#[test]
fn partition_counts_beyond_n_degenerate_to_one_vertex_tiles() {
    // More requested tiles than vertices: the partitioner clamps, cores
    // shrink to singletons, every ball lives in the halo.
    let g = topology::ring(6);
    let h = ExtendedConflictGraph::new(&g, 1);
    let base = DistributedPtasConfig::default()
        .with_r(1)
        .with_max_minirounds(None);
    assert_tiled_parity_sequence(&h, base, 64, 0, 5, 2, "tiny-ring oversplit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random graphs, random weights, random tile/thread settings: the
    /// tiled decide is indistinguishable from the serial one.
    #[test]
    fn tiled_decide_matches_serial_on_random_instances(
        ((n, edge_seed), (weight_seed, partitions), (threads, r)) in
            ((4usize..40, 0u64..10_000), (0u64..10_000, 2usize..10), (0usize..2, 1usize..3)),
    ) {
        let mut rng = StdRng::seed_from_u64(edge_seed);
        let mut b = Graph::builder(n);
        for _ in 0..(2 * n) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let h = ExtendedConflictGraph::new(&g, 2);
        let base = DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(None);
        assert_tiled_parity_sequence(
            &h, base, partitions, threads, weight_seed, 2, "proptest instance",
        );
    }
}
