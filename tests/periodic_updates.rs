//! Integration tests of the Section V-C periodic (stale-weight) update
//! machinery: the airtime fractions, the estimated-vs-actual gap, and the
//! bookkeeping identities.

use mhca::bandit::policies::{CsUcb, Llr, Oracle};
use mhca::core::{
    runner::{run_policy, Algorithm2Config},
    Network, TimeModel,
};

#[test]
fn oracle_effective_fractions_match_the_paper() {
    // With a constant strategy (oracle indices never change) the effective
    // throughput is exactly 1/2, 9/10, 19/20, 39/40 of the observed
    // throughput for y = 1, 5, 10, 20 (Section V-C).
    let net = Network::random(8, 3, 3.0, 0.0, 10); // sigma 0: deterministic rates
    let mut oracle = Oracle::new(net.channels().means());
    for (y, frac) in [(1usize, 0.5), (5, 0.9), (10, 0.95), (20, 0.975)] {
        let cfg = Algorithm2Config::default()
            .with_horizon(40 * y as u64)
            .with_update_period(y);
        let run = run_policy(&net, &cfg, &mut oracle);
        let ratio = run.average_effective_kbps / run.average_observed_kbps;
        assert!(
            (ratio - frac).abs() < 1e-9,
            "y={y}: effective fraction {ratio} != {frac}"
        );
    }
}

#[test]
fn stale_weights_barely_hurt_estimation_accuracy() {
    // Fig. 8's message: infrequent updates have negligible impact on the
    // estimate quality but improve effective throughput. Compare the
    // CS-UCB estimate gap at y=1 vs y=10.
    let net = Network::random(20, 4, 3.5, 0.1, 11);
    let run_y = |y: usize| {
        let cfg = Algorithm2Config::default()
            .with_horizon(200 * y as u64)
            .with_update_period(y);
        run_policy(&net, &cfg, &mut CsUcb::new(2.0))
    };
    let r1 = run_y(1);
    let r10 = run_y(10);
    assert!(
        r10.average_effective_kbps > r1.average_effective_kbps,
        "y=10 should raise effective throughput"
    );
    let gap = |r: &mhca::core::RunResult| {
        (r.avg_estimated_throughput.last().unwrap() - r.avg_actual_throughput.last().unwrap()).abs()
            / r.avg_actual_throughput.last().unwrap()
    };
    // Estimation stays reasonable despite 10× staler weights.
    assert!(
        gap(&r10) < gap(&r1) + 0.2,
        "staleness destroyed estimation: y1 gap {}, y10 gap {}",
        gap(&r1),
        gap(&r10)
    );
}

#[test]
fn cs_ucb_estimates_tighter_than_llr() {
    // The Fig. 8 separation: Algorithm 2's estimated throughput tracks its
    // actual throughput closely, LLR's overshoots.
    let net = Network::random(20, 4, 3.5, 0.1, 12);
    let cfg = Algorithm2Config::default()
        .with_horizon(500)
        .with_update_period(5);
    let cs = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    let llr = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
    let cs_gap =
        cs.avg_estimated_throughput.last().unwrap() - cs.avg_actual_throughput.last().unwrap();
    let llr_gap =
        llr.avg_estimated_throughput.last().unwrap() - llr.avg_actual_throughput.last().unwrap();
    assert!(
        cs_gap.abs() < llr_gap.abs(),
        "cs gap {cs_gap} should be tighter than llr gap {llr_gap}"
    );
}

#[test]
fn period_series_lengths_match_period_count() {
    let net = Network::random(8, 2, 2.5, 0.1, 13);
    let cfg = Algorithm2Config::default()
        .with_horizon(95) // not a multiple of y: last period is short
        .with_update_period(10);
    let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
    assert_eq!(run.period_end_slots.len(), 10);
    assert_eq!(*run.period_end_slots.last().unwrap(), 95);
    assert_eq!(run.comm.decisions, 10);
}

#[test]
fn custom_time_model_changes_theta() {
    let net = Network::random(8, 2, 2.5, 0.0, 14);
    let mut cfg = Algorithm2Config::default().with_horizon(50);
    cfg.time = TimeModel {
        round_ms: 1000.0,
        broadcast_ms: 50.0,
        compute_ms: 25.0,
        data_ms: 800.0,
    };
    let mut oracle = Oracle::new(net.channels().means());
    let run = run_policy(&net, &cfg, &mut oracle);
    let ratio = run.average_effective_kbps / run.average_observed_kbps;
    assert!(
        (ratio - 0.8).abs() < 1e-9,
        "theta should be 0.8, got {ratio}"
    );
}
