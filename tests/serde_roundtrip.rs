//! Serde round-trips for the data structures experiments persist.
//!
//! Experiment configs and outputs are serialized (CSV/JSON) for the bench
//! binaries and for reproducibility records; these tests pin the formats
//! down with JSON round-trips through `serde_json`-free plumbing (we use
//! the `serde` data model via the `serde::Serialize`/`Deserialize` derive
//! and a minimal in-tree encoder is overkill — `bincode`-style checks are
//! done structurally by comparing debug output after a clone instead).

use mhca::core::{
    experiments::{Fig6Config, Fig7Config, Fig8Config},
    runner::Algorithm2Config,
    DistributedPtasConfig, TimeModel,
};
use mhca::graph::{ChannelId, NodeId, Strategy, VertexId};

#[test]
fn configs_are_cloneable_and_comparable() {
    let a = Algorithm2Config::default().with_horizon(123).with_seed(9);
    let b = a.clone();
    assert_eq!(a, b);
    let c = b.with_update_period(5);
    assert_ne!(c.update_period, a.update_period);
}

#[test]
fn experiment_configs_default_to_paper_values() {
    let f6 = Fig6Config::default();
    assert_eq!(
        f6.sizes,
        vec![(50, 5), (100, 5), (200, 5), (50, 10), (100, 10), (200, 10)]
    );
    assert_eq!(f6.r, 2);

    let f7 = Fig7Config::default();
    assert_eq!((f7.n, f7.m, f7.horizon), (15, 3, 1000));

    let f8 = Fig8Config::default();
    assert_eq!((f8.n, f8.m), (100, 10));
    assert_eq!(f8.update_periods, vec![1, 5, 10, 20]);
    assert_eq!(f8.updates_per_run, 1000);
}

#[test]
fn time_model_and_decision_config_equality() {
    assert_eq!(TimeModel::default(), TimeModel::default());
    let d1 = DistributedPtasConfig::default();
    let d2 = DistributedPtasConfig::default().with_r(2);
    assert_eq!(d1, d2); // default r is already 2
    assert_ne!(d1, d2.with_r(3));
}

#[test]
fn ids_order_and_hash_consistently() {
    use std::collections::HashSet;
    let set: HashSet<VertexId> = [VertexId(1), VertexId(2), VertexId(1)]
        .into_iter()
        .collect();
    assert_eq!(set.len(), 2);
    assert!(NodeId(0) < NodeId(1));
    assert!(ChannelId(2) > ChannelId(0));
}

#[test]
fn strategy_equality_is_structural() {
    let mut a = Strategy::new(3);
    let mut b = Strategy::new(3);
    a.assign(NodeId(1), ChannelId(0));
    b.assign(NodeId(1), ChannelId(0));
    assert_eq!(a, b);
    b.assign(NodeId(2), ChannelId(1));
    assert_ne!(a, b);
}
