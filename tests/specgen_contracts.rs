//! The generated property-harness battery: one auto-derived `#[test]`
//! per spec-taking entry point, over `mhca_specgen`'s contract inventory.
//!
//! Each test generates scenarios from the full spec space, checks the
//! contract, and — on violation — shrinks to a minimal failing
//! `ScenarioSpec`, prints a replayable choice vector, and writes the
//! report to `target/specgen/<contract>.counterexample.txt`.
//!
//! Case budgets are per-contract defaults; override globally with
//! `MHCA_SPECGEN_CASES=<n>` (CI pins this for reproducible runtimes).
//! See `docs/TESTING.md` for the contract inventory and replay workflow.

mhca_specgen::harness![
    spec_json_roundtrip,
    network_from_spec,
    run_experiment_deterministic,
    decide_parity,
    partition_parity,
    campaign_worker_parity,
    policy_runner_snapshot,
    traffic_lindley,
    traffic_service_resume,
];

/// The battery covers the entire inventory: a contract added to
/// `contracts::all()` without a line in the `harness!` list above fails
/// here instead of silently going untested.
#[test]
fn battery_covers_every_contract_in_the_inventory() {
    let listed = [
        "spec_json_roundtrip",
        "network_from_spec",
        "run_experiment_deterministic",
        "decide_parity",
        "partition_parity",
        "campaign_worker_parity",
        "policy_runner_snapshot",
        "traffic_lindley",
        "traffic_service_resume",
    ];
    for contract in mhca_specgen::contracts::all() {
        assert!(
            listed.contains(&contract.name),
            "contract `{}` is missing from the harness! list in tests/specgen_contracts.rs",
            contract.name
        );
    }
}
