//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API subset this workspace's benches use — benchmark
//! groups, [`BenchmarkId`], `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on a simple
//! wall-clock harness:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples of
//!   adaptively-chosen iteration batches;
//! * the **median** ns/iter is printed to stdout;
//! * one JSON line per benchmark is appended to
//!   `target/criterion-stub/results.jsonl` (path overridable with
//!   `CRITERION_STUB_OUT`), which is what `BENCHMARKS.md` scripts consume.
//!
//! No statistical outlier analysis, plots, or saved baselines — diff the
//! JSON lines between runs instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility;
    /// the stub only recognizes `--quick`).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--quick") {
            self.sample_size = 10;
            self.measurement_time = Duration::from_millis(200);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, routine: F) {
        let id = id.into_id();
        self.run(&id, routine);
    }

    /// Benchmarks `routine` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) {
        self.run(&id.id, |b| routine(b, input));
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: F) {
        // Calibrate: find an iteration count that takes roughly one
        // sample's worth of wall clock.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b); // warm-up + first calibration point
        let per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let single = b.elapsed.as_nanos().max(1);
        let iters = (per_sample / single).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            routine(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];

        let full = format!("{}/{}", self.name, id);
        println!("bench {full:<55} median {median:>14.1} ns/iter  (min {min:.1}, max {max:.1}, {iters} iters x {} samples)", self.sample_size);
        append_json(&full, median, min, max, iters, self.sample_size);
    }
}

/// Appends one JSON line with this benchmark's result.
fn append_json(id: &str, median: f64, min: f64, max: f64, iters: u64, samples: usize) {
    let path = std::env::var("CRITERION_STUB_OUT")
        .unwrap_or_else(|_| "target/criterion-stub/results.jsonl".to_string());
    let path = std::path::PathBuf::from(path);
    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "{{\"id\":\"{id}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"iters\":{iters},\"samples\":{samples}}}"
        );
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_self_test");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_times() {
        std::env::set_var("CRITERION_STUB_OUT", "target/criterion-stub/test.jsonl");
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            ..Criterion::default()
        };
        sample_bench(&mut c);
    }
}
