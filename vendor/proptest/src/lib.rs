//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of proptest this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges, tuples (arity 2–4), and [`prelude::Just`];
//! * [`collection::vec`] with `Range`/`RangeInclusive`/exact sizes;
//! * [`prelude::any`] for primitive types;
//! * the [`proptest!`] macro (accepting `#![proptest_config(...)]` and
//!   `pattern in strategy` arguments) plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failures are reported
//! by panicking with the generated inputs' `Debug` rendering. Shrinking is
//! **choice-sequence based** (the Hypothesis design rather than upstream's
//! value-tree design): every `u64` the RNG hands a strategy is recorded,
//! a failing case's recording is minimized by [`shrink::minimize`] under
//! "the property still fails", and the minimized sequence replays through
//! [`TestRng::from_choices`] to regenerate the shrunk inputs exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Deterministic per-test random source driving strategy generation.
///
/// Every `u64` drawn through this source is recorded (see
/// [`TestRng::choices`]); a recording replayed via
/// [`TestRng::from_choices`] regenerates the identical values, and a
/// replay that runs past the end of its choice list yields zeros — which
/// every built-in strategy maps to its minimal value (range start,
/// shortest collection, first `Union` option). Choice-sequence shrinking
/// rests on both properties.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
    /// Replay source, when this RNG replays a recorded sequence.
    replay: Option<Vec<u64>>,
    /// Position in the replay sequence.
    pos: usize,
    /// Every `u64` handed out, in draw order.
    recording: Vec<u64>,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    ///
    /// The seed mixes an FNV-1a hash of the name with the case index, so
    /// every test walks its own reproducible sequence.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1)),
            replay: None,
            pos: 0,
            recording: Vec::new(),
        }
    }

    /// RNG that replays `choices` in order, then yields zeros forever.
    ///
    /// Replaying the recording of a previous generation pass reproduces
    /// its values exactly; replaying a *mutated* recording produces a
    /// structurally nearby value — the shrinking mechanism.
    pub fn from_choices(choices: Vec<u64>) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(0),
            replay: Some(choices),
            pos: 0,
            recording: Vec::new(),
        }
    }

    /// The `u64`s handed out so far, in draw order. On a replay RNG this
    /// is the *consumed* sequence (zero-padded past the end of the input
    /// choices), i.e. the canonical form of the replayed prefix.
    pub fn choices(&self) -> &[u64] {
        &self.recording
    }

    fn next_u64(&mut self) -> u64 {
        let x = match &self.replay {
            Some(choices) => choices.get(self.pos).copied().unwrap_or(0),
            None => self.inner.next_u64(),
        };
        self.pos += 1;
        self.recording.push(x);
        x
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases this strategy (upstream `Strategy::boxed`) so
        /// heterogeneous strategies for one value type can share a name —
        /// the building block of [`Union`] and of trait methods returning
        /// strategies.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (upstream's `BoxedStrategy`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies for one value type
    /// (upstream's `Union` / `prop_oneof!`). The zero choice selects the
    /// first option, so shrinking drives enum values toward the variant
    /// listed first — put the simplest one there.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A strategy choosing uniformly among `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if width == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + (rng.next_u64() % (width + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Types with a canonical "any value" strategy (primitive subset).
    pub trait Arbitrary: Sized + Debug {
        /// The strategy [`super::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    impl<T> Default for AnyPrimitive<T> {
        fn default() -> Self {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive::default()
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive::default()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % width as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Choice-sequence minimization (the shrinking half of the crate).
///
/// A failing generation pass leaves a recorded `Vec<u64>` of RNG draws
/// ([`TestRng::choices`]); [`minimize`](shrink::minimize) mutates that sequence toward the
/// all-zero/empty sequence — which every strategy maps to its minimal
/// value — keeping each mutation only if the caller's predicate reports
/// the property *still fails* when the mutated sequence is replayed.
pub mod shrink {
    /// Minimizes `initial` under `fails` (which must hold for `initial`
    /// itself), spending at most `max_attempts` predicate calls.
    ///
    /// Deterministic passes, repeated to a fixed point: drop trailing
    /// zeros (replay pads with zeros, so they are dead weight), delete
    /// blocks of draws (shrinks collection sizes and drops whole
    /// sub-values), zero blocks (resets sub-values to their minimum), and
    /// halve/decrement single draws (shrinks scalars). The result replays
    /// to a failing input that is minimal up to these moves — typically
    /// the smallest collection sizes and range minimums that still
    /// reproduce the failure.
    pub fn minimize(
        initial: Vec<u64>,
        fails: &mut dyn FnMut(&[u64]) -> bool,
        max_attempts: usize,
    ) -> Vec<u64> {
        let mut best = initial;
        let mut attempts = 0usize;
        trim_zeros(&mut best);
        loop {
            let mut improved = false;

            // Delete blocks, widest first; on success retry the same
            // index (the next block shifted into place).
            for &block in &[16usize, 8, 4, 2, 1] {
                let mut i = 0;
                while i + block <= best.len() {
                    if attempts >= max_attempts {
                        return best;
                    }
                    let mut cand = best.clone();
                    cand.drain(i..i + block);
                    attempts += 1;
                    if fails(&cand) {
                        best = cand;
                        improved = true;
                    } else {
                        i += 1;
                    }
                }
            }

            // Zero blocks, widest first.
            for &block in &[8usize, 4, 2, 1] {
                let mut i = 0;
                while i + block <= best.len() {
                    if attempts >= max_attempts {
                        return best;
                    }
                    if best[i..i + block].iter().any(|&x| x != 0) {
                        let mut cand = best.clone();
                        cand[i..i + block].fill(0);
                        attempts += 1;
                        if fails(&cand) {
                            best = cand;
                            improved = true;
                        }
                    }
                    i += block;
                }
            }

            // Shrink single draws: halve while it keeps failing, then
            // step down by one.
            for i in 0..best.len() {
                while best[i] != 0 {
                    if attempts >= max_attempts {
                        return best;
                    }
                    let halved = best[i] / 2;
                    let mut cand = best.clone();
                    cand[i] = halved;
                    attempts += 1;
                    if fails(&cand) {
                        best = cand;
                        improved = true;
                        continue;
                    }
                    if attempts >= max_attempts {
                        return best;
                    }
                    let mut cand = best.clone();
                    cand[i] = best[i] - 1;
                    attempts += 1;
                    if fails(&cand) {
                        best = cand;
                        improved = true;
                        continue;
                    }
                    break;
                }
            }

            trim_zeros(&mut best);
            if !improved {
                return best;
            }
        }
    }

    /// Trailing zeros are equivalent to absent draws under zero-padded
    /// replay.
    fn trim_zeros(choices: &mut Vec<u64>) {
        while choices.last() == Some(&0) {
            choices.pop();
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The upstream name for [`test_runner::Config`].
pub use test_runner::Config as ProptestConfig;

/// Full-domain strategy for a primitive type (upstream `any::<T>()`).
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, and functions whose arguments are
/// `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                // Generates from `rng`, runs the body, and returns the
                // inputs' Debug repr on failure. Strategies are
                // re-evaluated per call so the same expressions serve
                // generation and shrink-replay alike.
                let __run_case = |__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), (String, Box<dyn ::std::any::Any + Send>)> {
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), __rng), )* );
                    let __repr = format!("{:?}", __vals);
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat,)* ) = __vals;
                        $body
                    }))
                    .map_err(|panic| (__repr, panic))
                };
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    if let Err((__repr, __panic)) = __run_case(&mut __rng) {
                        let __choices = __rng.choices().to_vec();
                        // Silence the default panic hook while the
                        // shrinker replays failing candidates.
                        let __hook = ::std::panic::take_hook();
                        ::std::panic::set_hook(Box::new(|_| {}));
                        let __minimal = $crate::shrink::minimize(
                            __choices,
                            &mut |choices| {
                                let mut replay =
                                    $crate::TestRng::from_choices(choices.to_vec());
                                __run_case(&mut replay).is_err()
                            },
                            4096,
                        );
                        ::std::panic::set_hook(__hook);
                        let mut __replay = $crate::TestRng::from_choices(__minimal.clone());
                        let __shrunk = match __run_case(&mut __replay) {
                            Err((repr, _)) => repr,
                            Ok(()) => "<shrink replay unexpectedly passed>".to_string(),
                        };
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs {}",
                            stringify!($name), __case, __cfg.cases, __repr,
                        );
                        eprintln!(
                            "proptest: {} minimal failing inputs {}\nproptest: replay with TestRng::from_choices(vec!{:?})",
                            stringify!($name), __shrunk, __minimal,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = ((0usize..5), (0.0f64..2.0)).generate(&mut rng);
            assert!(a < 5 && (0.0..2.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 0);
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(0usize..10, 3usize..=3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut rng = crate::TestRng::for_case("flat", 0);
        let strat = (1usize..10)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), c in any::<u64>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn replay_reproduces_recorded_generation() {
        let strat = crate::collection::vec(0usize..100, 1..6);
        let mut rng = crate::TestRng::for_case("replay", 3);
        let fresh = strat.generate(&mut rng);
        let mut replay = crate::TestRng::from_choices(rng.choices().to_vec());
        assert_eq!(strat.generate(&mut replay), fresh);
    }

    #[test]
    fn exhausted_replay_pads_with_zeros() {
        let mut replay = crate::TestRng::from_choices(vec![7]);
        let strat = (3usize..9, 10u64..20);
        // First draw consumes the 7 (3 + 7 % 6 = 4); second pads to the
        // range minimum.
        assert_eq!(strat.generate(&mut replay), (4, 10));
    }

    #[test]
    fn minimize_finds_small_failing_sequence() {
        let strat = crate::collection::vec(0usize..100, 1..8);
        let fails = |choices: &[u64]| {
            let mut rng = crate::TestRng::from_choices(choices.to_vec());
            strat.generate(&mut rng).iter().any(|&x| x >= 5)
        };
        // Find a failing case, then shrink its choice sequence.
        let mut initial = None;
        for case in 0..64 {
            let mut rng = crate::TestRng::for_case("minimize", case);
            let v = strat.generate(&mut rng);
            if v.iter().any(|&x| x >= 5) {
                initial = Some(rng.choices().to_vec());
                break;
            }
        }
        let minimal =
            crate::shrink::minimize(initial.expect("no failing case"), &mut { fails }, 4096);
        let mut rng = crate::TestRng::from_choices(minimal.clone());
        let v = strat.generate(&mut rng);
        // Minimal failing input: a single element exactly at the
        // threshold.
        assert_eq!(v, vec![5]);
        assert!(minimal.len() <= 2, "minimal choices too long: {minimal:?}");
    }

    #[test]
    fn union_picks_among_options_and_defaults_to_first() {
        let strat = Union::new(vec![Just(1u32).boxed(), (10u32..20).boxed()]);
        let mut rng = crate::TestRng::for_case("union", 0);
        for _ in 0..50 {
            let x = strat.generate(&mut rng);
            assert!(x == 1 || (10..20).contains(&x));
        }
        let mut zeros = crate::TestRng::from_choices(vec![]);
        assert_eq!(strat.generate(&mut zeros), 1);
    }
}
