//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of proptest this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges, tuples (arity 2–4), and [`prelude::Just`];
//! * [`collection::vec`] with `Range`/`RangeInclusive`/exact sizes;
//! * [`prelude::any`] for primitive types;
//! * the [`proptest!`] macro (accepting `#![proptest_config(...)]` and
//!   `pattern in strategy` arguments) plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), failures are reported by
//! panicking with the generated inputs' `Debug` rendering, and there is
//! **no shrinking** — a failing case prints exactly the inputs that broke.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Deterministic per-test random source driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    ///
    /// The seed mixes an FNV-1a hash of the name with the case index, so
    /// every test walks its own reproducible sequence.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if width == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + (rng.next_u64() % (width + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Types with a canonical "any value" strategy (primitive subset).
    pub trait Arbitrary: Sized + Debug {
        /// The strategy [`super::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    impl<T> Default for AnyPrimitive<T> {
        fn default() -> Self {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive::default()
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive::default()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % width as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The upstream name for [`test_runner::Config`].
pub use test_runner::Config as ProptestConfig;

/// Full-domain strategy for a primitive type (upstream `any::<T>()`).
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, and functions whose arguments are
/// `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )* );
                    let __repr = format!("{:?}", __vals);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ( $($pat,)* ) = __vals;
                            $body
                        }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs {}",
                            stringify!($name), __case, __cfg.cases, __repr,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = ((0usize..5), (0.0f64..2.0)).generate(&mut rng);
            assert!(a < 5 && (0.0..2.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 0);
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(0usize..10, 3usize..=3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut rng = crate::TestRng::for_case("flat", 0);
        let strat = (1usize..10)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), c in any::<u64>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
            prop_assert_eq!(a + b, b + a);
        }
    }
}
