//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! The workspace builds in an environment without a crates.io mirror, so
//! this crate re-implements exactly the API subset the workspace uses:
//!
//! * [`RngCore`] — object-safe generator core (`next_u32`/`next_u64`/
//!   `fill_bytes`), usable as `&mut dyn RngCore`.
//! * [`Rng`] — blanket extension trait with `gen`, `gen_range`, `gen_bool`.
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for the workspace's
//! moment-matching distribution tests. It is **not** the upstream
//! ChaCha-based `StdRng`, so seed-for-seed streams differ from real
//! `rand`; nothing in this repository depends on upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Object-safe core of a random-number generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an [`RngCore`]
/// (the stand-in for `Standard: Distribution<T>`).
pub trait SampleValue: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleValue for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleValue for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleValue for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128).wrapping_sub(lo as u128) as u64;
                if width == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits; `[0, 1)` for floats).
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded via SplitMix64.
    ///
    /// Deterministic per seed; not the upstream ChaCha `StdRng` (see the
    /// crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words — the generator's exact stream
        /// position. Together with [`StdRng::from_state`] this lets a
        /// checkpoint record "where in the stream" a run is and resume
        /// bit-identically (mid-job policy-state checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a previously captured stream position.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not a valid xoshiro
        /// state (the generator would emit zeros forever) and cannot be
        /// produced by [`StdRng::state`] on a seeded generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256** state"
            );
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_integer_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(1..=10);
            assert!((1..=10).contains(&y));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = Rng::gen::<f64>(dynr);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
