//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Provides the data-parallel subset the workspace uses — `into_par_iter`
//! / `par_iter` over ranges, `Vec`, and slices, with `map`, `collect`,
//! `sum`, and `for_each` — executed on `std::thread::scope`: items are
//! split into one contiguous chunk per available core, each chunk is
//! processed on its own scoped thread, and results are concatenated in
//! input order. There is no work-stealing; for the coarse-grained
//! per-seed simulation sweeps this workspace parallelizes, even splitting
//! is within noise of a real scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits a user needs in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads (`RAYON_NUM_THREADS` override, else cores).
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `items` through `f` on scoped threads, preserving input order.
fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into contiguous chunks, one per worker.
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);

    let mut out: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A lazily-described parallel computation over `Item`s.
pub trait ParallelIterator: Sized {
    /// Element type this stage yields.
    type Item: Send;

    /// Executes the pipeline, yielding all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<O: Send, F: Fn(Self::Item) -> O + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Collects the results (only `Vec<Item>` is supported).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter_vec(self.run())
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Runs `f` on every item in parallel, discarding results.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let _ = self.map(f).run();
    }
}

/// Collection types a parallel pipeline can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from the ordered result vector.
    fn from_par_iter_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Source stage holding materialized items.
pub struct IterParallel<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterParallel<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Stage applying a function in parallel.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: ParallelIterator, O: Send, F: Fn(B::Item) -> O + Sync> ParallelIterator for Map<B, F> {
    type Item = O;
    fn run(self) -> Vec<O> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Source stage type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterParallel<T>;
    fn into_par_iter(self) -> IterParallel<T> {
        IterParallel { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = IterParallel<$t>;
            fn into_par_iter(self) -> IterParallel<$t> {
                IterParallel { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(usize, u64, u32, i64, i32);

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Source stage type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterParallel<&'a T>;
    fn par_iter(&'a self) -> IterParallel<&'a T> {
        IterParallel {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterParallel<&'a T>;
    fn par_iter(&'a self) -> IterParallel<&'a T> {
        IterParallel {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_vec_refs() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn for_each_touches_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        (0u64..100).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
