//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! This workspace persists experiment outputs as CSV (see `mhca-bench`)
//! and never drives a serde data format, so the `Serialize`/`Deserialize`
//! traits here are *markers*: deriving them records the intent ("this type
//! is part of the persisted surface") and keeps every `#[derive(Serialize,
//! Deserialize)]` in the tree compiling without a crates.io mirror. If a
//! real format backend is ever added, swap this stub for upstream serde —
//! all call sites are already written against the upstream trait names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose value can be serialized.
pub trait Serialize {}

/// Marker for types that can be reconstructed from serialized data.
pub trait Deserialize<'de>: Sized {}
