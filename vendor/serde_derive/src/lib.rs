//! Derive macros for the offline `serde` stand-in (see `vendor/README.md`).
//!
//! The stub traits are markers, so the derives only need the item's name:
//! the input token stream is scanned for the `struct`/`enum`/`union`
//! keyword and the following identifier. `syn`/`quote` are unavailable
//! offline; plain `proc_macro` token scanning covers every type in this
//! workspace (all serde-derived types are non-generic).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name a `derive` input defines.
///
/// Scans top-level tokens for `struct` / `enum` / `union` followed by the
/// type name. Panics (a compile error at the derive site) on generic
/// types, which this stub does not support — nothing in the workspace
/// derives serde on a generic type.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "the offline serde_derive stub does not support generic type `{name}`"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde derive input contains no struct/enum/union");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
